#include "simmpi/comm.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>

#include "common/error.hpp"
#include "obs/trace.hpp"

namespace llio::sim {

namespace detail {

struct Message {
  int src;
  int tag;
  ByteVec data;
};

struct Mailbox {
  std::mutex mu;
  std::condition_variable cv;
  std::deque<Message> queue;
};

class Context {
 public:
  explicit Context(int nprocs, const CommCostModel& net = {})
      : nprocs_(nprocs), net_(net), mailboxes_(to_size(Off{nprocs})),
        stats_(to_size(Off{nprocs})) {}

  int size() const noexcept { return nprocs_; }

  CommCostModel net() const {
    std::lock_guard<std::mutex> lock(net_mu_);
    return net_;
  }

  void set_net(const CommCostModel& net) {
    std::lock_guard<std::mutex> lock(net_mu_);
    net_ = net;
  }

  void abort() {
    aborted_.store(true, std::memory_order_release);
    for (auto& mb : mailboxes_) {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.cv.notify_all();
    }
    {
      std::lock_guard<std::mutex> lock(barrier_mu_);
      barrier_cv_.notify_all();
    }
  }

  bool aborted() const { return aborted_.load(std::memory_order_acquire); }

  void check_alive() const {
    LLIO_REQUIRE(!aborted(), Errc::Protocol,
                 "communication aborted: a peer rank failed");
  }

  /// Zero-copy send: the payload moves into the receiver's mailbox.
  /// Stats are charged before the move, so accounting is identical to the
  /// copying overload.
  void send(int src, int dst, int tag, ByteVec&& data, MsgClass cls) {
    check_alive();
    LLIO_REQUIRE(dst >= 0 && dst < nprocs_, Errc::InvalidArgument,
                 "send: bad destination rank");
    CommStats& st = stats_[to_size(Off{src})];
    st.msgs_sent += 1;
    if (cls == MsgClass::Data)
      st.data_bytes_sent += data.size();
    else
      st.meta_bytes_sent += data.size();
    Mailbox& mb = mailboxes_[to_size(Off{dst})];
    {
      std::lock_guard<std::mutex> lock(mb.mu);
      mb.queue.push_back({src, tag, std::move(data)});
    }
    mb.cv.notify_all();
  }

  void send(int src, int dst, int tag, ConstByteSpan data, MsgClass cls) {
    send(src, dst, tag, ByteVec(data.begin(), data.end()), cls);
  }

  ByteVec recv(int self, int src, int tag) {
    LLIO_REQUIRE(src >= 0 && src < nprocs_, Errc::InvalidArgument,
                 "recv: bad source rank");
    Mailbox& mb = mailboxes_[to_size(Off{self})];
    std::unique_lock<std::mutex> lock(mb.mu);
    for (;;) {
      check_alive();
      auto it = std::find_if(mb.queue.begin(), mb.queue.end(),
                             [&](const Message& m) {
                               return m.src == src && m.tag == tag;
                             });
      if (it != mb.queue.end()) {
        ByteVec out = std::move(it->data);
        mb.queue.erase(it);
        const CommCostModel nm = net();
        if (!nm.free()) {
          lock.unlock();
          charge_network(nm, out.size());
        }
        return out;
      }
      mb.cv.wait(lock);
    }
  }

  std::pair<int, ByteVec> recv_any(int self, int tag) {
    Mailbox& mb = mailboxes_[to_size(Off{self})];
    std::unique_lock<std::mutex> lock(mb.mu);
    for (;;) {
      check_alive();
      auto it = std::find_if(mb.queue.begin(), mb.queue.end(),
                             [&](const Message& m) { return m.tag == tag; });
      if (it != mb.queue.end()) {
        const int src = it->src;
        ByteVec out = std::move(it->data);
        mb.queue.erase(it);
        const CommCostModel nm = net();
        if (!nm.free()) {
          lock.unlock();
          charge_network(nm, out.size());
        }
        return {src, std::move(out)};
      }
      mb.cv.wait(lock);
    }
  }

  std::optional<std::pair<int, ByteVec>> try_recv_any(int self, int tag) {
    Mailbox& mb = mailboxes_[to_size(Off{self})];
    std::unique_lock<std::mutex> lock(mb.mu);
    check_alive();
    auto it = std::find_if(mb.queue.begin(), mb.queue.end(),
                           [&](const Message& m) { return m.tag == tag; });
    if (it == mb.queue.end()) return std::nullopt;
    const int src = it->src;
    ByteVec out = std::move(it->data);
    mb.queue.erase(it);
    const CommCostModel nm = net();
    if (!nm.free()) {
      lock.unlock();
      charge_network(nm, out.size());
    }
    return std::make_pair(src, std::move(out));
  }

  std::optional<std::pair<int, ByteVec>> recv_any_for(int self, int tag,
                                                      double timeout_s) {
    Mailbox& mb = mailboxes_[to_size(Off{self})];
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(std::max(timeout_s, 0.0)));
    std::unique_lock<std::mutex> lock(mb.mu);
    for (;;) {
      check_alive();
      auto it = std::find_if(mb.queue.begin(), mb.queue.end(),
                             [&](const Message& m) { return m.tag == tag; });
      if (it != mb.queue.end()) {
        const int src = it->src;
        ByteVec out = std::move(it->data);
        mb.queue.erase(it);
        const CommCostModel nm = net();
        if (!nm.free()) {
          lock.unlock();
          charge_network(nm, out.size());
        }
        return std::make_pair(src, std::move(out));
      }
      if (mb.cv.wait_until(lock, deadline) == std::cv_status::timeout)
        return std::nullopt;
    }
  }

  /// Burn wall time per the interconnect cost model.
  static void charge_network(const CommCostModel& net, std::size_t bytes) {
    double s = net.latency_s;
    if (net.bandwidth_bps > 0)
      s += static_cast<double>(bytes) / net.bandwidth_bps;
    if (s <= 0) return;
    if (s < 50e-6) {
      const auto until =
          std::chrono::steady_clock::now() +
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::duration<double>(s));
      while (std::chrono::steady_clock::now() < until) {
      }
    } else {
      std::this_thread::sleep_for(std::chrono::duration<double>(s));
    }
  }

  void barrier() {
    std::unique_lock<std::mutex> lock(barrier_mu_);
    check_alive();
    const std::uint64_t gen = barrier_gen_;
    if (++barrier_count_ == nprocs_) {
      barrier_count_ = 0;
      ++barrier_gen_;
      barrier_cv_.notify_all();
      return;
    }
    barrier_cv_.wait(lock, [&] { return barrier_gen_ != gen || aborted(); });
    check_alive();
  }

  CommStats& stats(int rank) { return stats_[to_size(Off{rank})]; }

 private:
  int nprocs_;
  mutable std::mutex net_mu_;
  CommCostModel net_;
  std::vector<Mailbox> mailboxes_;
  std::vector<CommStats> stats_;
  std::atomic<bool> aborted_{false};

  std::mutex barrier_mu_;
  std::condition_variable barrier_cv_;
  int barrier_count_ = 0;
  std::uint64_t barrier_gen_ = 0;
};

}  // namespace detail

namespace {
// Internal tags reserved for the collective implementations.
constexpr int kTagAllgather = -101;
constexpr int kTagAlltoall = -102;
constexpr int kTagBcast = -103;
constexpr int kTagReduce = -104;

/// Build the wire image of a gather-send: header bytes, then the runs in
/// order.  With no runs the header IS the message and moves untouched.
ByteVec materialize_gather(ByteVec&& header,
                           std::span<const ConstByteSpan> runs) {
  if (runs.empty()) return std::move(header);
  std::size_t total = header.size();
  for (const ConstByteSpan& r : runs) total += r.size();
  ByteVec out = std::move(header);
  out.reserve(total);
  for (const ConstByteSpan& r : runs)
    out.insert(out.end(), r.begin(), r.end());
  return out;
}

/// Deliver a received payload into the scatter runs, in order.
void scatter_payload(ConstByteSpan payload, std::span<const ByteSpan> runs) {
  std::size_t at = 0;
  for (const ByteSpan& r : runs) {
    LLIO_REQUIRE(at + r.size() <= payload.size(), Errc::Protocol,
                 "scatter recv: runs exceed the payload");
    if (!r.empty()) std::memcpy(r.data(), payload.data() + at, r.size());
    at += r.size();
  }
  LLIO_REQUIRE(at == payload.size(), Errc::Protocol,
               "scatter recv: runs do not cover the payload");
}
}  // namespace

int Comm::size() const noexcept { return ctx_->size(); }

CommCostModel Comm::cost_model() const { return ctx_->net(); }

void Comm::set_cost_model(const CommCostModel& net) { ctx_->set_net(net); }

void Comm::send(int dst, int tag, ConstByteSpan data, MsgClass cls) {
  ctx_->send(rank_, dst, tag, data, cls);
}

void Comm::send(int dst, int tag, ByteVec&& data, MsgClass cls) {
  ctx_->send(rank_, dst, tag, std::move(data), cls);
}

void Comm::send_gather(int dst, int tag, ConstByteSpan header,
                       std::span<const ConstByteSpan> runs, MsgClass cls) {
  ctx_->send(rank_, dst, tag,
             materialize_gather(ByteVec(header.begin(), header.end()), runs),
             cls);
}

void Comm::send_gather(int dst, int tag, ByteVec&& header,
                       std::span<const ConstByteSpan> runs, MsgClass cls) {
  ctx_->send(rank_, dst, tag, materialize_gather(std::move(header), runs),
             cls);
}

ByteVec Comm::recv(int src, int tag) {
  obs::Span span("recv", obs::TraceLevel::Full);
  span.arg("src", src);
  return ctx_->recv(rank_, src, tag);
}

Off Comm::recv_scatter(int src, int tag, std::span<const ByteSpan> runs) {
  obs::Span span("recv", obs::TraceLevel::Full);
  span.arg("src", src);
  const ByteVec msg = ctx_->recv(rank_, src, tag);
  scatter_payload(msg, runs);
  return to_off(msg.size());
}

std::pair<int, ByteVec> Comm::recv_any(int tag) {
  obs::Span span("recv_any", obs::TraceLevel::Full);
  return ctx_->recv_any(rank_, tag);
}

std::optional<std::pair<int, ByteVec>> Comm::try_recv_any(int tag) {
  return ctx_->try_recv_any(rank_, tag);
}

std::optional<std::pair<int, ByteVec>> Comm::recv_any_for(int tag,
                                                          double timeout_s) {
  obs::Span span("recv_any", obs::TraceLevel::Full);
  return ctx_->recv_any_for(rank_, tag, timeout_s);
}

void Comm::barrier() {
  obs::Span span("barrier", obs::TraceLevel::Full);
  ctx_->barrier();
}

std::vector<ByteVec> Comm::allgather(ConstByteSpan mine, MsgClass cls) {
  obs::Span span("allgather", obs::TraceLevel::Full);
  span.arg("bytes", to_off(mine.size()));
  const int p = size();
  std::vector<ByteVec> out(to_size(Off{p}));
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    ctx_->send(rank_, r, kTagAllgather, mine, cls);
  }
  out[to_size(Off{rank_})] = ByteVec(mine.begin(), mine.end());
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    out[to_size(Off{r})] = ctx_->recv(rank_, r, kTagAllgather);
  }
  return out;
}

std::vector<ByteVec> Comm::allgather(ByteVec&& mine, MsgClass cls) {
  // Peers necessarily get copies (one payload, p-1 destinations), but the
  // self slot takes the buffer by move.
  obs::Span span("allgather", obs::TraceLevel::Full);
  span.arg("bytes", to_off(mine.size()));
  const int p = size();
  std::vector<ByteVec> out(to_size(Off{p}));
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    ctx_->send(rank_, r, kTagAllgather, ConstByteSpan(mine), cls);
  }
  out[to_size(Off{rank_})] = std::move(mine);
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    out[to_size(Off{r})] = ctx_->recv(rank_, r, kTagAllgather);
  }
  return out;
}

std::vector<ByteVec> Comm::alltoall(std::vector<ByteVec> outgoing,
                                    MsgClass cls) {
  const int p = size();
  LLIO_REQUIRE(static_cast<int>(outgoing.size()) == p, Errc::InvalidArgument,
               "alltoall: outgoing size != nprocs");
  obs::Span span("alltoall", obs::TraceLevel::Full);
  if (span.active()) {
    Off total = 0;
    for (const ByteVec& v : outgoing) total += to_off(v.size());
    span.arg("bytes", total);
  }
  std::vector<ByteVec> in(to_size(Off{p}));
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    // Move each payload into the destination mailbox: large Data-class
    // buffers (two-phase exchange) are never deep-copied.
    ctx_->send(rank_, r, kTagAlltoall, std::move(outgoing[to_size(Off{r})]),
               cls);
  }
  in[to_size(Off{rank_})] = std::move(outgoing[to_size(Off{rank_})]);
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    in[to_size(Off{r})] = ctx_->recv(rank_, r, kTagAlltoall);
  }
  return in;
}

std::vector<ByteVec> Comm::alltoall_gather(std::vector<GatherMsg> outgoing,
                                           MsgClass cls) {
  const int p = size();
  LLIO_REQUIRE(static_cast<int>(outgoing.size()) == p, Errc::InvalidArgument,
               "alltoall_gather: outgoing size != nprocs");
  obs::Span span("alltoall", obs::TraceLevel::Full);
  if (span.active()) {
    Off total = 0;
    for (const GatherMsg& m : outgoing)
      total += to_off(m.header.size()) + m.payload_bytes();
    span.arg("bytes", total);
  }
  std::vector<ByteVec> in(to_size(Off{p}));
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    GatherMsg& m = outgoing[to_size(Off{r})];
    ctx_->send(rank_, r, kTagAlltoall,
               materialize_gather(std::move(m.header), m.runs), cls);
  }
  {
    GatherMsg& m = outgoing[to_size(Off{rank_})];
    in[to_size(Off{rank_})] = materialize_gather(std::move(m.header), m.runs);
  }
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    in[to_size(Off{r})] = ctx_->recv(rank_, r, kTagAlltoall);
  }
  return in;
}

std::vector<ByteVec> Comm::alltoall_scatter(
    std::vector<ByteVec> outgoing,
    const std::vector<std::vector<ByteSpan>>& scatter, MsgClass cls) {
  const int p = size();
  LLIO_REQUIRE(static_cast<int>(outgoing.size()) == p, Errc::InvalidArgument,
               "alltoall_scatter: outgoing size != nprocs");
  LLIO_REQUIRE(static_cast<int>(scatter.size()) == p, Errc::InvalidArgument,
               "alltoall_scatter: scatter size != nprocs");
  obs::Span span("alltoall", obs::TraceLevel::Full);
  if (span.active()) {
    Off total = 0;
    for (const ByteVec& v : outgoing) total += to_off(v.size());
    span.arg("bytes", total);
  }
  std::vector<ByteVec> in(to_size(Off{p}));
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    ctx_->send(rank_, r, kTagAlltoall, std::move(outgoing[to_size(Off{r})]),
               cls);
  }
  {
    ByteVec self = std::move(outgoing[to_size(Off{rank_})]);
    const auto& runs = scatter[to_size(Off{rank_})];
    if (!runs.empty())
      scatter_payload(self, runs);
    else
      in[to_size(Off{rank_})] = std::move(self);
  }
  for (int r = 0; r < p; ++r) {
    if (r == rank_) continue;
    ByteVec got = ctx_->recv(rank_, r, kTagAlltoall);
    const auto& runs = scatter[to_size(Off{r})];
    if (!runs.empty())
      scatter_payload(got, runs);
    else
      in[to_size(Off{r})] = std::move(got);
  }
  return in;
}

ByteVec Comm::bcast(int root, ConstByteSpan mine) {
  obs::Span span("bcast", obs::TraceLevel::Full);
  span.arg("root", root);
  if (rank_ == root) {
    for (int r = 0; r < size(); ++r) {
      if (r == root) continue;
      ctx_->send(rank_, r, kTagBcast, mine, MsgClass::Meta);
    }
    return ByteVec(mine.begin(), mine.end());
  }
  return ctx_->recv(rank_, root, kTagBcast);
}

namespace {
template <typename F>
Off allreduce_impl(Comm& c, detail::Context* ctx, int rank, Off v, F combine) {
  ByteVec raw(sizeof(Off));
  std::memcpy(raw.data(), &v, sizeof(Off));
  // Gather to rank 0, combine, broadcast back.
  if (rank == 0) {
    Off acc = v;
    for (int r = 1; r < c.size(); ++r) {
      ByteVec got = ctx->recv(0, r, kTagReduce);
      Off other;
      std::memcpy(&other, got.data(), sizeof(Off));
      acc = combine(acc, other);
    }
    ByteVec out(sizeof(Off));
    std::memcpy(out.data(), &acc, sizeof(Off));
    for (int r = 1; r < c.size(); ++r)
      ctx->send(0, r, kTagReduce, out, MsgClass::Meta);
    return acc;
  }
  ctx->send(rank, 0, kTagReduce, raw, MsgClass::Meta);
  ByteVec got = ctx->recv(rank, 0, kTagReduce);
  Off acc;
  std::memcpy(&acc, got.data(), sizeof(Off));
  return acc;
}
}  // namespace

Off Comm::allreduce_sum(Off v) {
  return allreduce_impl(*this, ctx_, rank_, v,
                        [](Off a, Off b) { return a + b; });
}

Off Comm::allreduce_min(Off v) {
  return allreduce_impl(*this, ctx_, rank_, v,
                        [](Off a, Off b) { return std::min(a, b); });
}

Off Comm::allreduce_max(Off v) {
  return allreduce_impl(*this, ctx_, rank_, v,
                        [](Off a, Off b) { return std::max(a, b); });
}

Off Comm::exscan_sum(Off v) {
  ByteVec raw(sizeof(Off));
  std::memcpy(raw.data(), &v, sizeof(Off));
  auto all = allgather(raw, MsgClass::Meta);
  Off sum = 0;
  for (int r = 0; r < rank_; ++r) {
    Off other;
    std::memcpy(&other, all[to_size(Off{r})].data(), sizeof(Off));
    sum += other;
  }
  return sum;
}

const CommStats& Comm::stats() const { return ctx_->stats(rank_); }

void Comm::reset_stats() { ctx_->stats(rank_) = CommStats{}; }

CommStats Comm::global_stats() {
  barrier();  // quiesce in-flight sends
  CommStats total;
  for (int r = 0; r < size(); ++r) total += ctx_->stats(r);
  barrier();
  return total;
}

void Runtime::run(int nprocs, const std::function<void(Comm&)>& body) {
  run(nprocs, CommCostModel{}, body);
}

void Runtime::run(int nprocs, const CommCostModel& net,
                  const std::function<void(Comm&)>& body) {
  LLIO_REQUIRE(nprocs >= 1, Errc::InvalidArgument, "run: nprocs < 1");
  detail::Context ctx(nprocs, net);
  std::vector<std::exception_ptr> errors(to_size(Off{nprocs}));
  std::vector<std::thread> threads;
  threads.reserve(to_size(Off{nprocs}));
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      const obs::ThreadTrackGuard track(r, 0, "rank " + std::to_string(r),
                                        "compute");
      Comm comm(&ctx, r);
      try {
        body(comm);
      } catch (...) {
        errors[to_size(Off{r})] = std::current_exception();
        ctx.abort();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

void Runtime::run_jobs(int njobs, int nprocs, const CommCostModel& net,
                       const std::function<void(int job, Comm&)>& body) {
  LLIO_REQUIRE(njobs >= 1, Errc::InvalidArgument, "run_jobs: njobs < 1");
  std::vector<std::exception_ptr> errors(to_size(Off{njobs}));
  std::vector<std::thread> jobs;
  jobs.reserve(to_size(Off{njobs}));
  for (int j = 0; j < njobs; ++j) {
    jobs.emplace_back([&, j] {
      try {
        run(nprocs, net, [&](Comm& c) { body(j, c); });
      } catch (...) {
        errors[to_size(Off{j})] = std::current_exception();
      }
    });
  }
  for (auto& t : jobs) t.join();
  for (auto& e : errors)
    if (e) std::rethrow_exception(e);
}

World::World(int nslots, const CommCostModel& net)
    : ctx_(std::make_unique<detail::Context>(nslots, net)) {
  LLIO_REQUIRE(nslots >= 1, Errc::InvalidArgument, "World: nslots < 1");
}

World::~World() = default;

int World::size() const noexcept { return ctx_->size(); }

Comm World::comm(int slot) {
  LLIO_REQUIRE(slot >= 0 && slot < ctx_->size(), Errc::InvalidArgument,
               "World::comm: slot out of range");
  return Comm(ctx_.get(), slot);
}

void World::abort() { ctx_->abort(); }

void World::set_cost_model(const CommCostModel& net) { ctx_->set_net(net); }

CommStats World::total_stats() const {
  CommStats total;
  for (int r = 0; r < ctx_->size(); ++r) total += ctx_->stats(r);
  return total;
}

void World::reset_stats() {
  for (int r = 0; r < ctx_->size(); ++r) ctx_->stats(r) = CommStats{};
}

}  // namespace llio::sim
