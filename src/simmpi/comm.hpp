// Thread-based message-passing runtime standing in for MPI.
//
// The paper's system runs on MPI/SX processes; here each "process" is a
// thread and "communication" is buffered message passing with byte
// accounting.  The accounting is what matters for the reproduction: the
// list-based two-phase path ships ol-lists (metadata) in addition to data,
// and the benches report both volumes separately (paper §2.3/§4.1).
//
// Usage:
//   sim::Runtime::run(4, [&](sim::Comm& c) { ... c.rank() ... });
//
// Exceptions thrown by any rank abort the whole run: other ranks blocked
// in communication calls receive an Errc::Protocol error, and the first
// exception is rethrown from run().
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "common/bytes.hpp"

namespace llio::sim {

/// Classification of message traffic for the benchmark accounting.
enum class MsgClass : std::uint8_t {
  Data,  ///< actual file data
  Meta,  ///< control information: ranges, ol-lists, cached fileviews
};

/// Interconnect cost model: each received message is charged
/// latency + size/bandwidth of wall time (on the receiver, which is where
/// message passing blocks).  Default: free (pure shared-memory copies).
/// Used by the network-sensitivity ablation: the slower the interconnect,
/// the more the list-based engine's ol-list exchange hurts (paper §5).
struct CommCostModel {
  double latency_s = 0.0;
  double bandwidth_bps = 0.0;  ///< 0 = infinite

  bool free() const { return latency_s <= 0.0 && bandwidth_bps <= 0.0; }
};

struct CommStats {
  std::uint64_t msgs_sent = 0;
  std::uint64_t data_bytes_sent = 0;
  std::uint64_t meta_bytes_sent = 0;

  std::uint64_t total_bytes() const {
    return data_bytes_sent + meta_bytes_sent;
  }

  CommStats& operator+=(const CommStats& o) {
    msgs_sent += o.msgs_sent;
    data_bytes_sent += o.data_bytes_sent;
    meta_bytes_sent += o.meta_bytes_sent;
    return *this;
  }
};

namespace detail {
class Context;
}

/// A gather-on-send message: `header` bytes first, then the payload
/// `runs` in order (iovec entries referencing caller memory).  The
/// payload is copied exactly once — when the message is materialized
/// into the receiver's mailbox; with no runs the header moves without
/// copying.  Wire bytes and accounting are identical to packing the runs
/// behind the header and calling send; the client staging copy is what
/// disappears.
struct GatherMsg {
  ByteVec header;
  std::vector<ConstByteSpan> runs;

  Off payload_bytes() const {
    Off n = 0;
    for (const ConstByteSpan& r : runs) n += to_off(r.size());
    return n;
  }
  bool empty() const { return header.empty() && runs.empty(); }
};

/// Per-rank communicator handle, valid inside Runtime::run's body.
class Comm {
 public:
  int rank() const noexcept { return rank_; }
  int size() const noexcept;

  /// Buffered send: never blocks; the payload is copied.
  void send(int dst, int tag, ConstByteSpan data,
            MsgClass cls = MsgClass::Data);

  /// Zero-copy send: the payload buffer moves into the receiver's mailbox
  /// (same stats accounting as the copying overload).
  void send(int dst, int tag, ByteVec&& data, MsgClass cls = MsgClass::Data);

  /// Gather-on-send: one message built from `header` followed by `runs`.
  void send_gather(int dst, int tag, ConstByteSpan header,
                   std::span<const ConstByteSpan> runs,
                   MsgClass cls = MsgClass::Data);

  /// Rvalue fast path: with no runs, `header` moves like send(ByteVec&&).
  void send_gather(int dst, int tag, ByteVec&& header,
                   std::span<const ConstByteSpan> runs,
                   MsgClass cls = MsgClass::Data);

  /// Blocking receive matching (src, tag).
  ByteVec recv(int src, int tag);

  /// Scatter-on-recv: receive (src, tag) and deliver the payload into
  /// `runs` in order.  The run lengths must sum to the message size
  /// (Errc::Protocol otherwise).  Returns the bytes delivered.
  Off recv_scatter(int src, int tag, std::span<const ByteSpan> runs);

  /// Blocking receive matching `tag` from any source (MPI_ANY_SOURCE):
  /// returns (src, payload).  Messages from one sender are delivered in
  /// send order.  This is what a server loop uses — it cannot know which
  /// client will request next.
  std::pair<int, ByteVec> recv_any(int tag);

  /// Non-blocking probe-and-receive: a matching message if one is already
  /// queued, std::nullopt otherwise.  A scheduler loop uses this to drain
  /// its mailbox without stalling on an empty queue.
  std::optional<std::pair<int, ByteVec>> try_recv_any(int tag);

  /// Bounded-wait receive: like recv_any but gives up after `timeout_s`
  /// seconds of an empty mailbox and returns std::nullopt.  This is a
  /// liveness mechanism only (detecting a stalled peer) — protocol
  /// decisions keyed to it must use a logical clock, not the wall time.
  std::optional<std::pair<int, ByteVec>> recv_any_for(int tag,
                                                      double timeout_s);

  void barrier();

  /// Gather every rank's contribution; result[i] is rank i's bytes.
  std::vector<ByteVec> allgather(ConstByteSpan mine,
                                 MsgClass cls = MsgClass::Meta);

  /// As above, moving `mine` into the self slot instead of copying it.
  std::vector<ByteVec> allgather(ByteVec&& mine,
                                 MsgClass cls = MsgClass::Meta);

  /// Personalized exchange; outgoing[i] goes to rank i (outgoing[rank]
  /// loops back).  Returns incoming[i] from rank i.
  std::vector<ByteVec> alltoall(std::vector<ByteVec> outgoing,
                                MsgClass cls = MsgClass::Data);

  /// Personalized exchange with gather-on-send payloads: outgoing[i] is
  /// materialized (header + runs) straight into rank i's mailbox.
  std::vector<ByteVec> alltoall_gather(std::vector<GatherMsg> outgoing,
                                       MsgClass cls = MsgClass::Data);

  /// Personalized exchange with scatter-on-recv: an incoming payload i
  /// with a non-empty scatter[i] is delivered into those runs and the
  /// returned slot i is left empty; runs must sum to the payload size.
  std::vector<ByteVec> alltoall_scatter(
      std::vector<ByteVec> outgoing,
      const std::vector<std::vector<ByteSpan>>& scatter,
      MsgClass cls = MsgClass::Data);

  /// Broadcast root's bytes to everyone.
  ByteVec bcast(int root, ConstByteSpan mine);

  Off allreduce_sum(Off v);
  Off allreduce_min(Off v);
  Off allreduce_max(Off v);

  /// Exclusive prefix sum: rank r receives the sum of ranks 0..r-1
  /// (rank 0 receives 0).
  Off exscan_sum(Off v);

  /// Interconnect cost model currently charged on receives.  The model is
  /// shared by the whole communication domain: set_cost_model swaps it for
  /// every rank, taking effect on the next receive.  Mid-run swaps model a
  /// changing interconnect (the adaptive-policy ablation flips fast→slow
  /// halfway through a bench); call it from one rank with the domain
  /// otherwise quiescent, or accept that in-flight receives may be charged
  /// under either model.
  CommCostModel cost_model() const;
  void set_cost_model(const CommCostModel& net);

  /// This rank's send-side statistics.
  const CommStats& stats() const;
  void reset_stats();

  /// Sum of all ranks' statistics (collective: includes a barrier).
  CommStats global_stats();

 private:
  friend class Runtime;
  friend class World;
  Comm(detail::Context* ctx, int rank) : ctx_(ctx), rank_(rank) {}

  detail::Context* ctx_;
  int rank_;
};

/// A standalone communication domain with a fixed number of slots and no
/// rank-threads of its own: the owner hands out per-slot Comm handles to
/// whatever threads it likes (file-server threads, client endpoints).
/// Each slot must be driven by at most one thread at a time — per-slot
/// send statistics are unsynchronized, exactly as under Runtime::run.
class World {
 public:
  explicit World(int nslots, const CommCostModel& net = {});
  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  int size() const noexcept;

  /// Communicator handle bound to `slot` (0 <= slot < size()).
  Comm comm(int slot);

  /// Wake every blocked receiver with Errc::Protocol (failure shutdown).
  void abort();

  /// Swap the interconnect cost model for the whole domain (see
  /// Comm::set_cost_model).
  void set_cost_model(const CommCostModel& net);

  /// Sum of all slots' send statistics.  Unlike Comm::global_stats() this
  /// does not barrier — the caller must know the domain is quiescent.
  CommStats total_stats() const;
  void reset_stats();

 private:
  std::unique_ptr<detail::Context> ctx_;
};

class Runtime {
 public:
  /// Run `body` on nprocs rank-threads; joins all and rethrows the first
  /// rank exception (after aborting blocked peers).
  static void run(int nprocs, const std::function<void(Comm&)>& body);

  /// As run(), with an interconnect cost model applied to every receive.
  static void run(int nprocs, const CommCostModel& net,
                  const std::function<void(Comm&)>& body);

  /// Run `njobs` independent jobs concurrently, each a full run() world
  /// of `nprocs` rank-threads over its own communication domain.  The
  /// jobs share nothing at this layer — multi-tenancy happens in whatever
  /// the bodies touch (e.g. one psrv::ServerPool opened by every job).
  /// Joins all jobs and rethrows the first failure.
  static void run_jobs(int njobs, int nprocs, const CommCostModel& net,
                       const std::function<void(int job, Comm&)>& body);
};

}  // namespace llio::sim
