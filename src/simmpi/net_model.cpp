#include "simmpi/net_model.hpp"

#include <cstdlib>

#include "common/error.hpp"

namespace llio::sim {

CommCostModel named_cost_model(const std::string& name) {
  if (name == "shared-mem") return {};
  if (name == "fast") return {2e-6, 10e9};
  if (name == "mid") return {10e-6, 1e9};
  if (name == "slow") return {50e-6, 100e6};
  const std::size_t colon = name.find(':');
  if (colon != std::string::npos) {
    const std::string lat = name.substr(0, colon);
    const std::string bw = name.substr(colon + 1);
    char* end = nullptr;
    CommCostModel m;
    m.latency_s = std::strtod(lat.c_str(), &end);
    const bool lat_ok = !lat.empty() && end == lat.c_str() + lat.size();
    m.bandwidth_bps = std::strtod(bw.c_str(), &end);
    const bool bw_ok = !bw.empty() && end == bw.c_str() + bw.size();
    LLIO_REQUIRE(lat_ok && bw_ok && m.latency_s >= 0 && m.bandwidth_bps >= 0,
                 Errc::InvalidArgument,
                 "net model: bad <latency_s>:<bandwidth_bps> form: " + name);
    return m;
  }
  LLIO_REQUIRE(false, Errc::InvalidArgument,
               "unknown net model (want shared-mem|fast|mid|slow|"
               "<latency_s>:<bandwidth_bps>): " +
                   name);
  return {};
}

const std::vector<std::pair<std::string, CommCostModel>>&
standard_cost_models() {
  static const std::vector<std::pair<std::string, CommCostModel>> kModels = {
      {"shared-mem", named_cost_model("shared-mem")},
      {"fast", named_cost_model("fast")},
      {"mid", named_cost_model("mid")},
      {"slow", named_cost_model("slow")},
  };
  return kModels;
}

CommCostModel cost_model_from_env(const CommCostModel& fallback) {
  const char* v = std::getenv("LLIO_NET_MODEL");
  if (v == nullptr || *v == '\0') return fallback;
  return named_cost_model(v);
}

}  // namespace llio::sim
