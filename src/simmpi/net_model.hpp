// Named interconnect cost models.
//
// The network-sensitivity ablations (paper §5) and the file-server
// subsystem all sweep the same few interconnect classes; naming them once
// here keeps the hint (`llio_net_model`), the environment override
// (LLIO_NET_MODEL) and the bench tables in agreement.
#pragma once

#include <string>
#include <vector>

#include "simmpi/comm.hpp"

namespace llio::sim {

/// Resolve a cost model by name:
///   "shared-mem"           free (pure memory copies)
///   "fast"                 2 us latency, 10 GB/s
///   "mid"                  10 us latency, 1 GB/s
///   "slow"                 50 us latency, 100 MB/s
///   "<latency_s>:<bw_bps>" custom, e.g. "5e-6:2e9"
/// Throws Errc::InvalidArgument on anything else.
CommCostModel named_cost_model(const std::string& name);

/// The standard sweep used by the ablation benches, in slowest-last order.
/// Each entry is {name, model}; names resolve through named_cost_model().
const std::vector<std::pair<std::string, CommCostModel>>&
standard_cost_models();

/// named_cost_model(LLIO_NET_MODEL) if the variable is set and non-empty,
/// else `fallback`.
CommCostModel cost_model_from_env(const CommCostModel& fallback = {});

}  // namespace llio::sim
