// Helpers for the MPI-IO layer tests: the paper's noncontig fileview, and
// reference file images computed independently of the engines under test.
#pragma once

#include <functional>

#include "dtype/flatten.hpp"
#include "fotf/navigate.hpp"
#include "mpiio/file.hpp"
#include "pfs/mem_file.hpp"
#include "psrv/server_file.hpp"
#include "simmpi/comm.hpp"
#include "test_util.hpp"

namespace llio::iotest {

/// Storage backends the randomized suites run the engines over: the
/// in-memory reference plus the file-server pool in all three request
/// classes.
enum class Backend { Mem, PsrvContig, PsrvList, PsrvView };

constexpr Backend kAllBackends[] = {Backend::Mem, Backend::PsrvContig,
                                    Backend::PsrvList, Backend::PsrvView};

inline const char* backend_name(Backend b) {
  switch (b) {
    case Backend::Mem: return "mem";
    case Backend::PsrvContig: return "psrv-contig";
    case Backend::PsrvList: return "psrv-list";
    case Backend::PsrvView: return "psrv-view";
  }
  return "?";
}

/// A deliberately tiny pool (3 servers, 64-byte stripe) so the modest
/// accesses the tests make still cross shard boundaries.
inline psrv::PoolConfig small_pool_config() {
  psrv::PoolConfig cfg;
  cfg.nservers = 3;
  cfg.stripe = 64;
  cfg.capacity = 3 * 64;
  cfg.queue_depth = 4;
  cfg.client_slots = 8;
  return cfg;
}

inline pfs::FilePtr make_backend(Backend b) {
  if (b == Backend::Mem) return pfs::MemFile::create();
  const psrv::RequestClass cls = b == Backend::PsrvContig
                                     ? psrv::RequestClass::Contig
                                 : b == Backend::PsrvList
                                     ? psrv::RequestClass::List
                                     : psrv::RequestClass::View;
  return psrv::ServerFile::create(psrv::ServerPool::create(small_pool_config()),
                                  cls);
}

/// Full file image through the public read path (works on any backend).
inline ByteVec backend_image(const pfs::FilePtr& f) {
  ByteVec img(to_size(f->size()), Byte{0});
  if (!img.empty()) f->pread(0, img);
  return img;
}

/// Images from different strategies may legitimately differ in length
/// (e.g. a sieving write-back extends the file further than a view write);
/// equality is up to trailing zeros.
inline void pad_to_common(ByteVec& a, ByteVec& b) {
  const std::size_t len = std::max(a.size(), b.size());
  a.resize(len, Byte{0});
  b.resize(len, Byte{0});
}

/// The noncontig benchmark fileview (paper Fig. 4): rank p sees blocks of
/// `sblock` bytes at stride nprocs*sblock, displaced by p*sblock; the
/// filetype extent covers one full round of all ranks' blocks, so the
/// ranks partition the file without overlap.
inline dt::Type noncontig_filetype(Off nblock, Off sblock, int nprocs,
                                   int rank) {
  const dt::Type v =
      dt::hvector(nblock, sblock, Off{nprocs} * sblock, dt::byte());
  const Off bls[] = {1};
  const Off ds[] = {Off{rank} * sblock};
  return dt::resized(dt::hindexed(bls, ds, v), 0,
                     nblock * Off{nprocs} * sblock);
}

/// Deterministic payload byte for (rank, stream position).
inline Byte payload_byte(int rank, Off s) {
  return Byte{static_cast<unsigned char>(
      (static_cast<unsigned>(rank) * 131u +
       static_cast<unsigned>(s) * 2654435761u) >>
      24)};
}

/// Expected file image after every rank wrote `nbytes` stream bytes
/// starting at stream offset `stream_lo` through `filetype(rank)` at
/// `disp`:  bytes never covered stay zero.
inline ByteVec expected_image(int nprocs,
                              const std::function<dt::Type(int)>& filetype,
                              Off disp, Off stream_lo, Off nbytes) {
  // Find the image size: max absolute offset touched.
  Off hi = 0;
  for (int r = 0; r < nprocs; ++r) {
    const dt::Type ft = filetype(r);
    hi = std::max(hi, disp + fotf::mem_end(ft, stream_lo + nbytes));
  }
  ByteVec img(to_size(hi), Byte{0});
  for (int r = 0; r < nprocs; ++r) {
    const dt::Type ft = filetype(r);
    const auto list = dt::flatten(ft, false);
    Off s = 0;  // stream position from view start
    for (Off inst = 0; s < stream_lo + nbytes; ++inst) {
      const Off base = disp + inst * ft->extent();
      for (const auto& tp : list.tuples()) {
        for (Off j = 0; j < tp.len && s < stream_lo + nbytes; ++j, ++s) {
          if (s >= stream_lo) img[to_size(base + tp.off + j)] =
              payload_byte(r, s - stream_lo);
        }
      }
    }
  }
  return img;
}

/// A rank's write payload: stream bytes [0, nbytes) of payload_byte.
inline ByteVec payload_stream(int rank, Off nbytes) {
  ByteVec v(to_size(nbytes));
  for (Off i = 0; i < nbytes; ++i) v[to_size(i)] = payload_byte(rank, i);
  return v;
}

/// A non-contiguous memtype holding a given dense stream: strided vector
/// of 8-byte blocks; returns (memtype, count, backing buffer) such that
/// packing the buffer yields exactly `stream`.
struct NcBuffer {
  dt::Type memtype;
  Off count;
  ByteVec storage;
};

inline NcBuffer make_nc_buffer(ConstByteSpan stream) {
  const Off nbytes = to_off(stream.size());
  // 8-byte blocks, 24-byte stride; count instances of an 8-byte vector.
  LLIO_REQUIRE(nbytes % 8 == 0, Errc::InvalidArgument,
               "nc buffer needs a multiple of 8 bytes");
  const Off blocks = nbytes / 8;
  NcBuffer b;
  b.memtype = dt::resized(dt::hvector(1, 8, 24, dt::byte()), 0, 24);
  b.count = blocks;
  b.storage.assign(to_size(blocks * 24), Byte{0xCC});
  for (Off i = 0; i < blocks; ++i)
    std::memcpy(b.storage.data() + i * 24, stream.data() + i * 8, 8);
  return b;
}

/// Extract the dense stream from an NcBuffer (for read verification).
inline ByteVec nc_buffer_stream(const NcBuffer& b) {
  ByteVec out(to_size(b.count * 8));
  for (Off i = 0; i < b.count; ++i)
    std::memcpy(out.data() + i * 8, b.storage.data() + i * 24, 8);
  return out;
}

}  // namespace llio::iotest
