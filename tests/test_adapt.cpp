// Adaptive policy layer tests: arm codec roundtrip, deterministic
// epsilon-probe bounds, hysteresis no-flap under noisy alternating costs
// vs greedy tracking, a synthetic cost-model regression fixture (exact
// EWMA evolution and switch point), config plumbing from hints, and the
// end-to-end guarantees — llio_adaptive=off is byte-identical to the
// unhinted baseline and llio_adaptive=auto stays data-correct across
// {list, listless} x {mem, throttled, psrv view} under a fuzzed
// collective schedule, with the decision trail landing in the JobReport.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <map>
#include <mutex>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "adapt/advisor.hpp"
#include "io_test_util.hpp"
#include "mpiio/file.hpp"
#include "mpiio/info.hpp"
#include "obs/agg.hpp"
#include "obs/snapshot.hpp"
#include "pfs/mem_file.hpp"
#include "pfs/throttled_file.hpp"
#include "simmpi/comm.hpp"

namespace llio::adapt {
namespace {

OpContext test_ctx() {
  OpContext ctx;
  ctx.op = 7;
  ctx.backend = 3;
  ctx.net = 4;
  ctx.view_sig = 0xfeedULL;
  ctx.nbytes = 1024;
  ctx.writing = true;
  ctx.view_io = true;
  ctx.nprocs = 2;
  return ctx;
}

/// Drive one advise/observe cycle with a per-arm cost schedule (ns/byte).
Decision step(Advisor& a, const OpContext& ctx, double cost_ns_per_byte) {
  const Decision d = a.advise(ctx);
  Outcome out;
  out.nbytes = ctx.nbytes;
  out.seconds = cost_ns_per_byte * static_cast<double>(ctx.nbytes) / 1e9;
  a.observe(ctx, d, out);
  return d;
}

// ---- arm codec -----------------------------------------------------------

TEST(ArmCodec, RoundtripsEveryKnobCombination) {
  AdaptConfig cfg;
  cfg.depths = {0, 2, 4};
  cfg.threads = {1, 2, 4};
  cfg.windows = {1 << 20, 4 << 20};
  auto a = make_advisor(cfg);
  for (mpiio::Method m : {mpiio::Method::Listless, mpiio::Method::ListBased})
    for (bool tp : {true, false})
      for (mpiio::Zerocopy zc : {mpiio::Zerocopy::Auto, mpiio::Zerocopy::Off})
        for (int depth : {0, 2, 4})
          for (int threads : {1, 2, 4})
            for (Off window : {Off{1} << 20, Off{4} << 20}) {
              Tuning t;
              t.method = m;
              t.two_phase = tp;
              t.zerocopy = zc;
              t.pipeline_depth = depth;
              t.pack_threads = threads;
              t.window = window;
              EXPECT_EQ(a->decode(a->encode(t)), t) << a->arm_label(a->encode(t));
            }
  // Labels are unique per distinct toggle combination (the trail keys on
  // them): bits 0-2 are method/route/zerocopy, bit 3 is unused padding.
  std::set<std::string> labels;
  for (int arm = 0; arm < (1 << 3); ++arm)
    labels.insert(a->arm_label(static_cast<std::uint16_t>(arm)));
  EXPECT_EQ(labels.size(), 8u);
}

TEST(ArmCodec, SanitizerKeepsBaseExpressible) {
  AdaptConfig cfg;
  cfg.base.pipeline_depth = 7;   // not in the candidate list
  cfg.base.pack_threads = 3;     // not in the candidate list
  cfg.base.window = 12345;       // not in the candidate list
  auto a = make_advisor(cfg);
  EXPECT_EQ(a->decode(a->encode(cfg.base)), cfg.base);
  // The static policy always returns exactly the base arm.
  AdaptConfig st = cfg;
  st.policy = AdaptConfig::Policy::Static;
  auto s = make_advisor(st);
  const OpContext ctx = test_ctx();
  for (int i = 0; i < 10; ++i) {
    const Decision d = s->advise(ctx);
    EXPECT_EQ(d.tuning, cfg.base);
    EXPECT_FALSE(d.probe);
  }
}

TEST(Config, ValidatesAndMapsFromOptions) {
  AdaptConfig bad;
  bad.epsilon = 0.9;
  EXPECT_THROW(make_advisor(bad), Error);
  bad = AdaptConfig{};
  bad.window = 0;
  EXPECT_THROW(make_advisor(bad), Error);
  bad = AdaptConfig{};
  bad.alpha = 0;
  EXPECT_THROW(make_advisor(bad), Error);

  mpiio::Options o;
  o.method = mpiio::Method::ListBased;
  o.adaptive = mpiio::Adaptive::Auto;
  o.adaptive_epsilon = 0.25;
  o.adaptive_window = 5;
  AdaptConfig cfg = config_from_options(o);
  EXPECT_EQ(cfg.policy, AdaptConfig::Policy::Hysteresis);
  EXPECT_DOUBLE_EQ(cfg.epsilon, 0.25);
  EXPECT_EQ(cfg.window, 5);
  EXPECT_EQ(cfg.base.method, mpiio::Method::ListBased);
  o.adaptive = mpiio::Adaptive::Force;
  EXPECT_EQ(config_from_options(o).policy, AdaptConfig::Policy::Greedy);
  o.adaptive_policy = "static";
  EXPECT_EQ(config_from_options(o).policy, AdaptConfig::Policy::Static);
}

// ---- epsilon probing -----------------------------------------------------

/// A config whose only explorable knob is the engine method, so every
/// probe lands on exactly one, known neighbor arm.
AdaptConfig single_neighbor_config() {
  AdaptConfig cfg;
  cfg.depths = {0};
  cfg.threads = {1};
  cfg.windows = {4 << 20};
  cfg.explore_route = false;
  cfg.explore_zerocopy = false;
  cfg.explore_method = true;
  return cfg;
}

TEST(Probing, DeterministicEpsilonBounds) {
  AdaptConfig cfg = single_neighbor_config();
  cfg.epsilon = 0.25;         // period 4: ops 4, 8, 12, ... probe
  cfg.probe_backoff_max = 0;  // keep the cadence exact for the bound
  auto a = make_advisor(cfg);
  const OpContext ctx = test_ctx();
  int probes = 0;
  const int kOps = 100;
  for (int i = 0; i < kOps; ++i) {
    const Decision d = step(*a, ctx, 1.0);
    if (d.probe) {
      ++probes;
      // A probe differs from the incumbent by exactly one knob.
      const Tuning inc = a->decode(a->encode(cfg.base));
      const Tuning probe = d.tuning;
      int diffs = 0;
      diffs += probe.method != inc.method;
      diffs += probe.two_phase != inc.two_phase;
      diffs += probe.zerocopy != inc.zerocopy;
      diffs += probe.pipeline_depth != inc.pipeline_depth;
      diffs += probe.pack_threads != inc.pack_threads;
      diffs += probe.window != inc.window;
      EXPECT_EQ(diffs, 1);
    }
  }
  EXPECT_EQ(probes, kOps / 4);  // exactly epsilon of the ops, no drift

  // epsilon = 0 never probes.
  AdaptConfig none = single_neighbor_config();
  none.epsilon = 0;
  auto quiet = make_advisor(none);
  for (int i = 0; i < 50; ++i) EXPECT_FALSE(step(*quiet, ctx, 1.0).probe);
}

// Exploration backoff: a key whose probes keep losing doubles its probe
// period after every completed neighbor cycle (capped), so a converged
// key stops paying steady-state probe drag.  With one neighbor and
// period 4 the probe ops are 4, 8, 16, 32, 64 — five probes where the
// flat cadence would spend 25.
TEST(Probing, BackoffDecaysProbeRateOnConvergedKey) {
  AdaptConfig cfg = single_neighbor_config();
  cfg.epsilon = 0.25;
  cfg.probe_backoff_max = 4;
  auto a = make_advisor(cfg);
  const OpContext ctx = test_ctx();
  std::vector<int> probe_ops;
  for (int i = 1; i <= 100; ++i)
    if (step(*a, ctx, 1.0).probe) probe_ops.push_back(i);
  EXPECT_EQ(probe_ops, (std::vector<int>{4, 8, 16, 32, 64}));
}

// A switch resets the backoff: after the challenger takes over, probing
// resumes at the base cadence around the new incumbent.
TEST(Probing, SwitchResetsBackoff) {
  AdaptConfig cfg = single_neighbor_config();
  cfg.epsilon = 0.25;
  cfg.window = 2;
  cfg.probe_backoff_max = 4;
  cfg.alpha = 1.0;  // no EWMA memory: isolate the probe scheduling
  auto a = make_advisor(cfg);
  const OpContext ctx = test_ctx();
  const std::uint16_t base_arm = a->encode(cfg.base);
  // Converge: incumbent at 1.0, neighbor probes lose at 2.0 until the
  // backoff reaches the cap (past op 64, period is 64).
  int last_probe = 0;
  for (int i = 1; i <= 70; ++i) {
    const Decision d = a->advise(ctx);
    Outcome out;
    out.nbytes = ctx.nbytes;
    out.seconds = (d.arm == base_arm ? 1.0 : 2.0) * 1024 / 1e9;
    a->observe(ctx, d, out);
    if (d.probe) last_probe = i;
  }
  EXPECT_EQ(last_probe, 64);
  // Now the neighbor wins decisively.  The op-64 probe already seeded a
  // streak?  No: it lost.  The next probe (op 128) wins, confirmation
  // re-probes at the base cadence (op 132) and switches — after which
  // probing runs at period 4 again around the new incumbent.
  std::vector<int> probes_after;
  bool switched = false;
  for (int i = 71; i <= 150; ++i) {
    const Decision d = a->advise(ctx);
    Outcome out;
    out.nbytes = ctx.nbytes;
    out.seconds = (d.arm == base_arm ? 1.0 : 0.2) * 1024 / 1e9;
    a->observe(ctx, d, out);
    if (d.probe) probes_after.push_back(i);
    if (d.probe && !switched) switched = true;
  }
  ASSERT_GE(probes_after.size(), 3u);
  EXPECT_EQ(probes_after[0], 128);  // backed-off round-robin probe (wins)
  EXPECT_EQ(probes_after[1], 132);  // confirmation at base cadence -> switch
  EXPECT_EQ(probes_after[2], 136);  // fresh cycle at base cadence
}

// Confirmation probing: once a challenger beats the margin, probe slots
// re-test it back-to-back instead of walking the rest of the neighbor
// ring, so the hysteresis window fills in window*period ops.
TEST(Probing, ChallengerConfirmedBackToBack) {
  AdaptConfig cfg;  // full neighbor ring: 6 arms to cycle through
  cfg.epsilon = 0.25;
  cfg.window = 2;
  auto a = make_advisor(cfg);
  const OpContext ctx = test_ctx();
  const std::uint16_t base_arm = a->encode(cfg.base);
  const Tuning base = a->decode(base_arm);
  int switch_op = 0;
  for (int i = 1; i <= 40 && switch_op == 0; ++i) {
    const Decision d = a->advise(ctx);
    // Only the route flip is genuinely better; everything else loses.
    const bool route_flip = d.tuning.two_phase != base.two_phase;
    Outcome out;
    out.nbytes = ctx.nbytes;
    out.seconds = (route_flip ? 0.2 : d.arm == base_arm ? 1.0 : 2.0) *
                  1024 / 1e9;
    a->observe(ctx, d, out);
    const auto trail = a->trail();
    if (!trail.empty() && trail.back().switched) switch_op = i;
  }
  // First route probe lands within the first neighbor cycle; the
  // confirmation follows one base period later — not a full ring later.
  EXPECT_GT(switch_op, 0);
  EXPECT_LE(switch_op, 12) << "confirmation must not wait out the ring";
}

// The independent route degrades to plain per-rank accesses on backends
// without pfs::ViewIo, so the toggle stays probe-eligible either way —
// whether leaving the exchange pays (slow client net, fast storage wire)
// is for the cost model to learn, not a structural gate.  With route
// exploration off there is no legal neighbor at all and probing is dead.
TEST(Probing, RouteNeighborAvailableWithoutViewIo) {
  AdaptConfig cfg;
  cfg.depths = {0};
  cfg.threads = {1};
  cfg.windows = {4 << 20};
  cfg.explore_method = false;
  cfg.explore_zerocopy = false;
  cfg.explore_route = false;
  cfg.epsilon = 0.5;  // probe every 2nd op
  auto a = make_advisor(cfg);
  OpContext ctx = test_ctx();
  ctx.view_io = false;
  for (int i = 0; i < 20; ++i)
    EXPECT_FALSE(step(*a, ctx, 1.0).probe)
        << "no probes possible without a single legal neighbor";
  cfg.explore_route = true;
  a = make_advisor(cfg);
  for (const bool view_io : {false, true}) {
    ctx.view_io = view_io;
    bool probed_route = false;
    for (int i = 0; i < 20; ++i) {
      const Decision d = step(*a, ctx, 1.0);
      if (d.probe && !d.tuning.two_phase) probed_route = true;
    }
    EXPECT_TRUE(probed_route) << "view_io=" << view_io;
  }
}

// ---- hysteresis vs greedy ------------------------------------------------

// The challenger alternates 0.5 / 2.0 ns/B against a steady 1.0 incumbent:
// spiky-good, bad on average.  Greedy (margin 0, window 1) takes the bait
// on the first lucky probe; hysteresis with window 2 requires two
// consecutive challenger wins, which the alternation never produces.
TEST(Hysteresis, NoFlapUnderNoisyAlternatingCosts) {
  const OpContext ctx = test_ctx();
  auto run = [&](AdaptConfig::Policy policy, int window) {
    AdaptConfig cfg = single_neighbor_config();
    cfg.policy = policy;
    cfg.window = window;
    cfg.margin = 0.1;
    cfg.epsilon = 0.5;  // probe every 2nd op
    auto a = make_advisor(cfg);
    const std::uint16_t base_arm = a->encode(cfg.base);
    int probe_no = 0;
    int switches = 0;
    for (int i = 0; i < 60; ++i) {
      const Decision d = a->advise(ctx);
      const bool is_base = d.arm == base_arm;
      const double cost = is_base ? 1.0 : (probe_no++ % 2 == 0 ? 0.5 : 2.0);
      Outcome out;
      out.nbytes = ctx.nbytes;
      out.seconds = cost * static_cast<double>(ctx.nbytes) / 1e9;
      a->observe(ctx, d, out);
    }
    for (const obs::AdaptDecision& rec : a->trail())
      if (rec.switched) ++switches;
    return switches;
  };
  EXPECT_EQ(run(AdaptConfig::Policy::Hysteresis, 2), 0)
      << "hysteresis must not flap on a spiky challenger";
  EXPECT_GE(run(AdaptConfig::Policy::Greedy, 1), 1)
      << "greedy takes the first win (the contrast that proves the "
         "hysteresis guard is doing the work)";
}

// A genuinely better challenger must take over — hysteresis delays the
// switch by `window` consecutive wins, it does not block it.
TEST(Hysteresis, ConsistentWinnerEventuallySwitches) {
  AdaptConfig cfg = single_neighbor_config();
  cfg.policy = AdaptConfig::Policy::Hysteresis;
  cfg.window = 2;
  cfg.margin = 0.1;
  cfg.epsilon = 0.5;
  auto a = make_advisor(cfg);
  const OpContext ctx = test_ctx();
  const std::uint16_t base_arm = a->encode(cfg.base);
  bool switched = false;
  for (int i = 0; i < 40 && !switched; ++i) {
    const Decision d = a->advise(ctx);
    const double cost = d.arm == base_arm ? 2.0 : 0.5;  // challenger 4x better
    Outcome out;
    out.nbytes = ctx.nbytes;
    out.seconds = cost * static_cast<double>(ctx.nbytes) / 1e9;
    a->observe(ctx, d, out);
    for (const obs::AdaptDecision& rec : a->trail())
      if (rec.switched) switched = true;
  }
  EXPECT_TRUE(switched);
  // After the switch the incumbent (non-probe advice) is the new arm.
  Decision d = a->advise(ctx);
  while (d.probe) {
    Outcome out;
    out.nbytes = ctx.nbytes;
    out.seconds = 0.5 * static_cast<double>(ctx.nbytes) / 1e9;
    a->observe(ctx, d, out);
    d = a->advise(ctx);
  }
  EXPECT_NE(d.arm, base_arm);
}

// ---- synthetic cost-model regression fixture -----------------------------

// Scripted observations with hand-computed EWMA evolution: pins down the
// exact cost-model arithmetic (alpha weighting, ns/byte normalization)
// and the exact op index greedy switches at.  Any change to the model
// must consciously update these numbers.
TEST(CostModel, RegressionFixture) {
  AdaptConfig cfg = single_neighbor_config();
  cfg.policy = AdaptConfig::Policy::Greedy;
  cfg.alpha = 0.5;     // easy arithmetic
  cfg.epsilon = 0.25;  // probe on ops 4, 8, ...
  auto a = make_advisor(cfg);
  const OpContext ctx = test_ctx();

  // Ops 1-3 observe the incumbent at 2.0 ns/B; op 4 probes the method
  // neighbor at 1.0 ns/B and greedy switches immediately.
  const double costs[] = {2.0, 2.0, 2.0, 1.0};
  std::vector<Decision> ds;
  for (double c : costs) ds.push_back(step(*a, ctx, c));
  EXPECT_FALSE(ds[0].probe);
  EXPECT_FALSE(ds[1].probe);
  EXPECT_FALSE(ds[2].probe);
  EXPECT_TRUE(ds[3].probe);

  const std::vector<obs::AdaptDecision> trail = a->trail();
  ASSERT_EQ(trail.size(), 4u);
  // EWMA of the incumbent: 2.0, then 0.5*2 + 0.5*2 = 2.0 throughout.
  EXPECT_DOUBLE_EQ(trail[0].cost_ns_per_byte, 2.0);
  EXPECT_LT(trail[0].incumbent_ns_per_byte, 0) << "no estimate before op 1";
  EXPECT_DOUBLE_EQ(trail[1].incumbent_ns_per_byte, 2.0);
  EXPECT_DOUBLE_EQ(trail[2].incumbent_ns_per_byte, 2.0);
  // The probe observed 1.0 < 2.0: greedy switches on the spot.
  EXPECT_TRUE(trail[3].probe);
  EXPECT_TRUE(trail[3].switched);
  EXPECT_DOUBLE_EQ(trail[3].cost_ns_per_byte, 1.0);

  // Op 5: the new incumbent is the method neighbor.
  const Decision d5 = a->advise(ctx);
  EXPECT_FALSE(d5.probe);
  EXPECT_NE(d5.tuning.method, cfg.base.method);
  EXPECT_DOUBLE_EQ(d5.incumbent_cost, 1.0);

  // Sequence numbers are dense and the trail is bounded.
  for (std::size_t i = 0; i < trail.size(); ++i)
    EXPECT_EQ(trail[i].seq, i + 1);
}

TEST(CostModel, TrailRingIsBounded) {
  AdaptConfig cfg = single_neighbor_config();
  cfg.trail_capacity = 8;
  auto a = make_advisor(cfg);
  const OpContext ctx = test_ctx();
  for (int i = 0; i < 50; ++i) step(*a, ctx, 1.0);
  const auto trail = a->trail();
  ASSERT_EQ(trail.size(), 8u);
  EXPECT_EQ(trail.front().seq, 43u);  // oldest surviving decision
  EXPECT_EQ(trail.back().seq, 50u);
}

TEST(CostModel, FollowMirrorsAdvise) {
  AdaptConfig cfg = single_neighbor_config();
  auto root = make_advisor(cfg);
  auto follower = make_advisor(cfg);
  const OpContext ctx = test_ctx();
  for (int i = 0; i < 30; ++i) {
    const Decision d = root->advise(ctx);
    const Decision f = follower->follow(ctx, d.arm, d.probe);
    EXPECT_EQ(f.arm, d.arm);
    EXPECT_EQ(f.tuning, d.tuning);
    EXPECT_EQ(f.probe, d.probe);
    Outcome out;
    out.nbytes = ctx.nbytes;
    out.seconds = (d.arm == root->encode(cfg.base) ? 2.0 : 0.5) *
                  static_cast<double>(ctx.nbytes) / 1e9;
    root->observe(ctx, d, out);
    follower->observe(ctx, f, out);
  }
  // Identical observe() streams leave identical trails.
  const auto rt = root->trail();
  const auto ft = follower->trail();
  ASSERT_EQ(rt.size(), ft.size());
  for (std::size_t i = 0; i < rt.size(); ++i) {
    EXPECT_EQ(rt[i].arm, ft[i].arm);
    EXPECT_EQ(rt[i].switched, ft[i].switched);
    EXPECT_DOUBLE_EQ(rt[i].cost_ns_per_byte, ft[i].cost_ns_per_byte);
  }
}

}  // namespace
}  // namespace llio::adapt

// ---- end-to-end through mpiio::File --------------------------------------

namespace llio {
namespace {

/// The Fig.-4 style interleaved vector view, local to this test.
dt::Type bench_view(Off nblock, Off sblock, int nprocs, int rank) {
  const dt::Type v =
      dt::hvector(nblock, sblock, Off{nprocs} * sblock, dt::byte());
  const Off bls[] = {1};
  const Off ds[] = {Off{rank} * sblock};
  return dt::resized(dt::hindexed(bls, ds, v), 0,
                     nblock * Off{nprocs} * sblock);
}

/// One fuzzed collective schedule against one (method, backend, hints)
/// configuration; returns the final file image.
ByteVec run_schedule(unsigned seed, mpiio::Method method,
                     iotest::Backend backend, const mpiio::Info& hints) {
  std::mt19937 rng(seed);
  const int nprocs = 2;
  const Off nblock = 4 + rng() % 8;
  const Off sblock = 4 + rng() % 16;
  const int ops = 3 + static_cast<int>(rng() % 4);
  std::vector<Off> offsets;
  std::vector<unsigned> fills;
  for (int i = 0; i < ops; ++i) {
    offsets.push_back(static_cast<Off>(rng() % 3));
    fills.push_back(rng() % 251);
  }

  pfs::FilePtr fs = iotest::make_backend(backend);
  sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
    mpiio::Options o;
    o.method = method;
    mpiio::File f = mpiio::File::open(comm, fs, hints, o);
    f.set_view(0, dt::byte(),
               bench_view(nblock, sblock, nprocs, comm.rank()));
    const Off count = nblock * sblock;
    ByteVec buf(to_size(count));
    for (int i = 0; i < ops; ++i) {
      for (std::size_t b = 0; b < buf.size(); ++b)
        buf[b] = static_cast<Byte>(
            (fills[static_cast<std::size_t>(i)] + b + comm.rank() * 31) % 251);
      f.write_at_all(offsets[static_cast<std::size_t>(i)] * count, buf.data(),
                     count, dt::byte());
      ByteVec back(buf.size());
      f.read_at_all(offsets[static_cast<std::size_t>(i)] * count, back.data(),
                    count, dt::byte());
      // Read-back through the (possibly adaptive) collective path sees
      // exactly what this rank wrote.
      ASSERT_EQ(back, buf) << "seed " << seed;
    }
  });
  return iotest::backend_image(fs);
}

TEST(AdaptiveFile, OffIsByteIdenticalAndAutoStaysCorrect) {
  obs::Sampler::instance().set_enabled(true);
  for (iotest::Backend backend :
       {iotest::Backend::Mem, iotest::Backend::PsrvView}) {
    for (mpiio::Method method :
         {mpiio::Method::ListBased, mpiio::Method::Listless}) {
      for (unsigned seed = 1; seed <= 4; ++seed) {
        const ByteVec baseline =
            run_schedule(seed, method, backend, mpiio::Info{});
        mpiio::Info off;
        off.set("llio_adaptive", "off");
        EXPECT_EQ(run_schedule(seed, method, backend, off), baseline)
            << "llio_adaptive=off must be bit-identical to no hint at all";
        for (const char* mode : {"auto", "force"}) {
          mpiio::Info on;
          on.set("llio_adaptive", mode);
          on.set("llio_adaptive_epsilon", "0.25");
          EXPECT_EQ(run_schedule(seed, method, backend, on), baseline)
              << "adaptive mode " << mode
              << " changed file contents (method "
              << mpiio::method_name(method) << ", seed " << seed << ")";
        }
      }
    }
  }
}

TEST(AdaptiveFile, ThrottledBackendStaysCorrect) {
  // Throttled wrap of shared memory: the adaptive route/method switches
  // must not change the bytes that land.
  for (unsigned seed = 10; seed <= 12; ++seed) {
    const int nprocs = 2;
    auto run = [&](const mpiio::Info& hints) {
      auto inner = pfs::MemFile::create();
      pfs::ThrottleConfig tc;
      tc.op_latency_s = 1e-5;
      pfs::FilePtr fs = pfs::ThrottledFile::wrap(inner, tc);
      std::mt19937 rng(seed);
      const Off nblock = 4 + rng() % 4;
      const Off sblock = 8;
      sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
        mpiio::Options o;
        mpiio::File f = mpiio::File::open(comm, fs, hints, o);
        f.set_view(0, dt::byte(),
                   bench_view(nblock, sblock, nprocs, comm.rank()));
        const Off count = nblock * sblock;
        ByteVec buf(to_size(count));
        for (int i = 0; i < 3; ++i) {
          for (std::size_t b = 0; b < buf.size(); ++b)
            buf[b] = static_cast<Byte>((seed + i + b) % 251);
          f.write_at_all(0, buf.data(), count, dt::byte());
        }
      });
      return iotest::backend_image(fs);
    };
    mpiio::Info off;
    off.set("llio_adaptive", "off");
    mpiio::Info on;
    on.set("llio_adaptive", "auto");
    EXPECT_EQ(run(on), run(off)) << "seed " << seed;
  }
}

TEST(AdaptiveFile, DecisionTrailLandsInJobReport) {
  obs::Sampler::instance().set_enabled(true);
  auto fs = pfs::MemFile::create();
  std::mutex mu;
  std::vector<obs::JobReport> reports;
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    mpiio::Options o;
    mpiio::Info hints;
    hints.set("llio_adaptive", "auto");
    hints.set("llio_adaptive_epsilon", "0.25");
    mpiio::File f = mpiio::File::open(comm, fs, hints, o);
    f.set_view(0, dt::byte(), bench_view(8, 8, 2, comm.rank()));
    ByteVec buf(64, Byte{0x7e});
    for (int i = 0; i < 9; ++i)
      f.write_at_all(0, buf.data(), 64, dt::byte());
    const obs::JobReport r = f.close();
    std::lock_guard lock(mu);
    reports.push_back(r);
  });
  ASSERT_EQ(reports.size(), 2u);
  for (const obs::JobReport& r : reports) {
    EXPECT_EQ(r.adapt_policy, "hysteresis");
    EXPECT_EQ(r.adapt_decisions, 9u);
    EXPECT_GT(r.adapt_probes, 0u);
    ASSERT_EQ(r.adapt_trail.size(), 9u);
    EXPECT_FALSE(r.adapt_dims.empty());
    for (const obs::AdaptDecision& d : r.adapt_trail) {
      // Every referenced dim resolves in the interned table the report
      // carries (what tools/check_report.py validates offline).
      EXPECT_LT(d.op, r.adapt_dims.size());
      EXPECT_LT(d.backend, r.adapt_dims.size());
      EXPECT_LT(d.net, r.adapt_dims.size());
      EXPECT_FALSE(d.arm.empty());
    }
    const std::string json = r.to_json();
    EXPECT_NE(json.find("\"adapt\""), std::string::npos);
    EXPECT_NE(json.find("\"policy\":\"hysteresis\""), std::string::npos);
    EXPECT_NE(json.find("\"trail\""), std::string::npos);
  }

  // Without the hint the report has no adapt section at all.
  auto fs2 = pfs::MemFile::create();
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    mpiio::File f = mpiio::File::open(comm, fs2, mpiio::Options{});
    ByteVec buf(16, Byte{1});
    f.write_at_all(comm.rank() * 16, buf.data(), 16, dt::byte());
    const obs::JobReport r = f.close();
    EXPECT_TRUE(r.adapt_policy.empty());
    EXPECT_EQ(r.to_json().find("\"adapt\""), std::string::npos);
  });
}

}  // namespace
}  // namespace llio
