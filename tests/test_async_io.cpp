// Async submission/completion engine and its queue-depth decorators:
// inline determinism at depth 1, SQ-full backpressure, per-batch error
// isolation, and — the load-bearing property — byte-identical semantics
// of every async/direct configuration against the synchronous reference,
// fuzz-asserted at the backend level and through both MPI-IO engines.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "io_test_util.hpp"
#include "pfs/async_io.hpp"
#include "pfs/mem_file.hpp"
#include "pfs/posix_file.hpp"
#include "pfs/striped_file.hpp"

namespace llio::pfs {
namespace {

using testutil::Rng;
using testutil::rnd;

ByteVec pattern(std::size_t n, unsigned seed) {
  ByteVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = Byte{static_cast<unsigned char>((i * 131 + seed * 7) & 0xFF)};
  return v;
}

TEST(AsyncIo, DepthOneRunsInlineInOrder) {
  AsyncIo io(1);
  std::vector<int> order;  // unguarded on purpose: inline = no threads
  AsyncIo::Batch batch;
  for (int i = 0; i < 32; ++i)
    io.submit(batch, [&order, i] { order.push_back(i); });
  io.wait(batch);
  ASSERT_EQ(order.size(), 32u);
  for (int i = 0; i < 32; ++i) EXPECT_EQ(order[to_size(i)], i);
  const AsyncIoStats st = io.stats();
  EXPECT_EQ(st.submitted, 32u);
  EXPECT_EQ(st.completed, 32u);
  EXPECT_EQ(st.inflight_peak, 1u);
}

TEST(AsyncIo, RejectsBadDepth) { EXPECT_THROW(AsyncIo io(0), Error); }

TEST(AsyncIo, ErrorRethrownOnWaitAndEngineReusable) {
  for (int qd : {1, 4}) {
    AsyncIo io(qd);
    AsyncIo::Batch bad;
    io.submit(bad, [] {});
    io.submit(bad, [] { throw_error(Errc::Io, "injected"); });
    io.submit(bad, [] {});
    EXPECT_THROW(io.wait(bad), Error) << "qd=" << qd;
    // The engine stays usable after a failed batch.
    AsyncIo::Batch ok;
    std::atomic<int> ran{0};
    for (int i = 0; i < 8; ++i)
      io.submit(ok, [&ran] { ran.fetch_add(1); });
    io.wait(ok);
    EXPECT_EQ(ran.load(), 8);
  }
}

TEST(AsyncIo, ConcurrentBatchesSeeOnlyTheirOwnErrors) {
  AsyncIo io(4);
  AsyncIo::Batch poisoned, clean;
  io.submit(poisoned, [] { throw_error(Errc::Io, "poisoned"); });
  std::atomic<int> ran{0};
  for (int i = 0; i < 6; ++i)
    io.submit(clean, [&ran] { ran.fetch_add(1); });
  io.wait(clean);  // must not observe the other batch's failure
  EXPECT_EQ(ran.load(), 6);
  EXPECT_THROW(io.wait(poisoned), Error);
}

TEST(AsyncIo, BackpressureBoundsInflight) {
  const int qd = 3;
  AsyncIo io(qd);
  std::atomic<int> cur{0}, peak{0};
  AsyncIo::Batch batch;
  for (int i = 0; i < 24; ++i) {
    io.submit(batch, [&] {
      const int c = cur.fetch_add(1) + 1;
      int p = peak.load();
      while (c > p && !peak.compare_exchange_weak(p, c)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      cur.fetch_sub(1);
    });
  }
  io.wait(batch);
  EXPECT_LE(peak.load(), qd);
  EXPECT_GE(peak.load(), 1);
  const AsyncIoStats st = io.stats();
  EXPECT_EQ(st.completed, 24u);
  EXPECT_LE(st.inflight_peak, static_cast<std::uint64_t>(qd));
}

// ---- randomized batch helpers ------------------------------------------

/// A sorted, group-disjoint vectored batch slicing `payload`; zero-length
/// segments and file-adjacent runs included on purpose.
std::vector<ConstIoVec> random_write_batch(Rng& rng, const ByteVec& payload) {
  std::vector<ConstIoVec> iov;
  Off off = rnd(rng, 0, 64);
  std::size_t at = 0;
  while (at < payload.size() && iov.size() < 40) {
    const std::size_t len =
        to_size(rnd(rng, 0, 48)) % (payload.size() - at + 1);
    iov.push_back({off, {payload.data() + at, len}});
    at += len;
    off += to_off(len);
    if (rnd(rng, 0, 2) == 0) off += rnd(rng, 1, 80);  // else stay adjacent
  }
  return iov;
}

std::vector<IoVec> random_read_batch(Rng& rng, ByteVec& dst, Off file_size) {
  std::vector<IoVec> iov;
  Off off = rnd(rng, 0, 16);
  std::size_t at = 0;
  while (at < dst.size() && iov.size() < 40 && off <= file_size + 32) {
    const std::size_t len = to_size(rnd(rng, 0, 48)) % (dst.size() - at + 1);
    iov.push_back({off, {dst.data() + at, len}});
    at += len;
    off += to_off(len) + rnd(rng, 0, 64);
  }
  return iov;
}

/// Identical random op soup against `f` and the MemFile reference; the
/// images and every read-back must match byte for byte.
void fuzz_against_mem(const FilePtr& f, unsigned seed, int rounds = 24) {
  auto ref = MemFile::create();
  Rng rng(seed);
  for (int round = 0; round < rounds; ++round) {
    const ByteVec payload =
        pattern(to_size(rnd(rng, 1, 2000)), seed + static_cast<unsigned>(round));
    switch (rnd(rng, 0, 3)) {
      case 0: {  // plain pwrite
        const Off off = rnd(rng, 0, 6000);
        f->pwrite(off, payload);
        ref->pwrite(off, payload);
        break;
      }
      case 1: {  // vectored write
        const auto iov = random_write_batch(rng, payload);
        f->pwritev(iov);
        ref->pwritev(iov);
        break;
      }
      case 2: {  // resize (grow or shrink)
        const Off n = rnd(rng, 0, 8000);
        f->resize(n);
        ref->resize(n);
        break;
      }
      default: {  // vectored read-back, including past-EOF segments
        ByteVec got(to_size(rnd(rng, 1, 1500)), Byte{0xAB});
        ByteVec want = got;
        Rng save = rng;
        const auto gi = random_read_batch(rng, got, f->size());
        rng = save;
        const auto wi = random_read_batch(rng, want, ref->size());
        EXPECT_EQ(f->preadv(gi), ref->preadv(wi));
        EXPECT_EQ(got, want);
        break;
      }
    }
    ASSERT_EQ(f->size(), ref->size()) << "round " << round;
  }
  ByteVec img(to_size(f->size()));
  if (!img.empty()) f->pread(0, img);
  EXPECT_EQ(img, ref->contents());
}

TEST(AsyncQdFile, FuzzMatchesInnerAtEveryDepth) {
  for (int qd : {1, 2, 4, 8}) {
    fuzz_against_mem(AsyncQdFile::wrap(MemFile::create(), qd),
                     1000u + static_cast<unsigned>(qd));
  }
}

TEST(AsyncQdFile, RejectsBadConfig) {
  EXPECT_THROW(AsyncQdFile::wrap(nullptr, 2), Error);
  EXPECT_THROW(AsyncQdFile::wrap(MemFile::create(), 0), Error);
}

TEST(AsyncQdFile, ReportsAsyncInfo) {
  auto f = AsyncQdFile::wrap(MemFile::create(), 4);
  const ByteVec data(256, Byte{1});
  const ConstIoVec iov[] = {{0, {data.data(), 64}},
                            {100, {data.data() + 64, 64}},
                            {200, {data.data() + 128, 64}}};
  f->pwritev(iov);
  const auto info = f->async_info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->queue_depth, 4);
  EXPECT_FALSE(info->direct);
  EXPECT_EQ(info->stats.submitted, 3u);  // one op per disjoint group
  EXPECT_EQ(info->stats.completed, 3u);
}

TEST(PosixFileAsync, FuzzMatchesMemAcrossDepthAndDirect) {
  unsigned seed = 7000;
  for (const bool direct : {false, true}) {
    for (const int qd : {1, 4}) {
      PosixConfig pc;
      pc.queue_depth = qd;
      pc.direct = direct;
      fuzz_against_mem(PosixFile::open_temp(::testing::TempDir(), pc),
                       ++seed);
    }
  }
}

TEST(PosixFileAsync, DirectUnalignedRmwPreservesNeighbors) {
  PosixConfig pc;
  pc.direct = true;
  auto f = PosixFile::open_temp(::testing::TempDir(), pc);
  // Lay down a pattern crossing several 4 KiB blocks, all unaligned.
  const ByteVec base = pattern(3 * 4096 + 123, 9);
  f->pwrite(1000, base);
  EXPECT_EQ(f->size(), 1000 + to_off(base.size()));  // logical, not rounded
  // Overwrite a span straddling a block edge; bytes on both sides stay.
  const ByteVec patch = pattern(32, 10);
  f->pwrite(4096 - 16, patch);
  ByteVec img(to_size(f->size()));
  f->pread(0, img);
  ByteVec want(to_size(f->size()), Byte{0});
  for (std::size_t i = 0; i < base.size(); ++i) want[1000 + i] = base[i];
  for (std::size_t i = 0; i < patch.size(); ++i)
    want[to_size(4096 - 16) + i] = patch[i];
  EXPECT_EQ(img, want);
  // Reads past the logical end are short, exactly like the plain path.
  ByteVec tail(64, Byte{0xEE});
  EXPECT_EQ(f->pread(f->size() - 8, tail), 8);
}

TEST(PosixFileAsync, ReportsAsyncInfo) {
  PosixConfig pc;
  pc.queue_depth = 2;
  auto f = PosixFile::open_temp(::testing::TempDir(), pc);
  f->pwrite(0, ByteVec(16, Byte{1}));
  const auto info = f->async_info();
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->queue_depth, 2);
  EXPECT_EQ(info->direct, f->direct_active());
}

// The acceptance fuzz: through the full MPI-IO stack, both engines over
// an async PosixFile (qd=1 and qd=4, direct off) must produce the exact
// image the MemFile reference run produces.
TEST(PosixFileAsync, EnginesMatchMemImageOverAsyncBackend) {
  const int nprocs = 2;
  const Off nblock = 6, sblock = 7;
  const Off nbytes = 3 * nblock * sblock;
  auto run = [&](mpiio::Method method, const FilePtr& fs) {
    sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
      mpiio::Options o;
      o.method = method;
      o.file_buffer_size = 64;  // small windows: many backend ops
      mpiio::File f = mpiio::File::open(comm, fs, o);
      f.set_view(0, dt::byte(),
                 iotest::noncontig_filetype(nblock, sblock, nprocs,
                                            comm.rank()));
      ByteVec stream(to_size(nbytes));
      for (Off i = 0; i < nbytes; ++i)
        stream[to_size(i)] = iotest::payload_byte(comm.rank(), i);
      f.write_at_all(0, stream.data(), nbytes, dt::byte());
      ByteVec back(to_size(nbytes), Byte{0});
      f.read_at_all(0, back.data(), nbytes, dt::byte());
      EXPECT_EQ(back, stream);
    });
    return iotest::backend_image(fs);
  };
  for (const auto method :
       {mpiio::Method::ListBased, mpiio::Method::Listless}) {
    const ByteVec want = run(method, MemFile::create());
    for (const int qd : {1, 4}) {
      PosixConfig pc;
      pc.queue_depth = qd;
      ByteVec got =
          run(method, PosixFile::open_temp(::testing::TempDir(), pc));
      ByteVec ref = want;
      iotest::pad_to_common(ref, got);
      EXPECT_EQ(got, ref) << mpiio::method_name(method) << " qd=" << qd;
    }
  }
}

// ---- striped layout ----------------------------------------------------

TEST(StripedFile, RotationMatchesClassicImageFuzz) {
  StripeLayout rotated;
  rotated.rotate = true;
  rotated.queue_depth = 2;
  auto make = [&](const StripeLayout& layout) {
    std::vector<FilePtr> devs = {MemFile::create(), MemFile::create(),
                                 MemFile::create()};
    return StripedFile::create(std::move(devs), 64, layout);
  };
  fuzz_against_mem(make(rotated), 4242);
  fuzz_against_mem(make(StripeLayout{}), 4242);  // same seed, classic layout
}

TEST(StripedFile, RotationShiftsRowsAcrossDevices) {
  const Off stripe = 64;
  const int nd = 3;
  std::vector<FilePtr> devs;
  std::vector<std::shared_ptr<MemFile>> mems;
  for (int d = 0; d < nd; ++d) {
    mems.push_back(MemFile::create());
    devs.push_back(mems.back());
  }
  StripeLayout layout;
  layout.rotate = true;
  auto f = StripedFile::create(std::move(devs), stripe, layout);
  // Stripe s carries byte value s; rotation maps stripe s (row r = s/nd,
  // k = s%nd) onto device (k + r) % nd at device offset r * stripe.
  const int nstripes = 9;
  for (int s = 0; s < nstripes; ++s)
    f->pwrite(Off{s} * stripe,
              ByteVec(to_size(stripe), Byte{static_cast<unsigned char>(s)}));
  for (int s = 0; s < nstripes; ++s) {
    const int row = s / nd, dev = (s % nd + row) % nd;
    ByteVec got(to_size(stripe));
    ASSERT_EQ(mems[to_size(dev)]->pread(Off{row} * stripe, got), stripe);
    for (Byte b : got) ASSERT_EQ(b, Byte{static_cast<unsigned char>(s)});
  }
  // Every device holds the same share: rotation balances full rows.
  for (int d = 0; d < nd; ++d)
    EXPECT_EQ(mems[to_size(d)]->size(), Off{nstripes / nd} * stripe);
}

TEST(StripedFile, RotationSizeResizeRoundtrip) {
  StripeLayout layout;
  layout.rotate = true;
  layout.queue_depth = 2;
  std::vector<FilePtr> devs = {MemFile::create(), MemFile::create(),
                               MemFile::create(), MemFile::create()};
  auto f = StripedFile::create(std::move(devs), 32, layout);
  for (const Off n : {Off{0}, Off{1}, Off{31}, Off{32}, Off{33}, Off{400},
                      Off{4096}, Off{129}, Off{7}}) {
    f->resize(n);
    EXPECT_EQ(f->size(), n);
  }
  // Write at a rotated tail and make sure size lands on the last byte.
  f->resize(0);
  f->pwrite(777, ByteVec(55, Byte{3}));
  EXPECT_EQ(f->size(), 832);
}

}  // namespace
}  // namespace llio::pfs
