// BTIO pattern correctness: Table 2 characterization and end-to-end
// collective writes checked against an independently computed reference
// image of the whole field.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "btio/pattern.hpp"
#include "fotf/navigate.hpp"
#include "io_test_util.hpp"

namespace llio::btio {
namespace {

TEST(BtioPattern, ClassGridSizes) {
  EXPECT_EQ(class_grid_size('S'), 12);
  EXPECT_EQ(class_grid_size('W'), 24);
  EXPECT_EQ(class_grid_size('A'), 64);
  EXPECT_EQ(class_grid_size('B'), 102);
  EXPECT_EQ(class_grid_size('C'), 162);
  EXPECT_THROW(class_grid_size('X'), Error);
}

TEST(BtioPattern, RejectsNonSquareProcessCounts) {
  EXPECT_THROW(Pattern(12, 3, 0), Error);
  EXPECT_THROW(Pattern(12, 8, 0), Error);
  EXPECT_NO_THROW(Pattern(12, 9, 0));
}

TEST(BtioPattern, CellsTileTheGrid) {
  // Across all ranks, each k-plane's cells partition the grid exactly.
  const Off n = 13;  // deliberately not divisible by q
  const int P = 9;
  for (Off k = 0; k < 3; ++k) {
    std::set<std::pair<Off, Off>> seen;
    Off volume = 0;
    for (int r = 0; r < P; ++r) {
      const Pattern pat(n, P, r);
      const CellGeom& c = pat.cells()[to_size(k)];
      EXPECT_EQ(c.ck, k);
      EXPECT_TRUE(seen.insert({c.ci, c.cj}).second)
          << "duplicate cell owner in plane " << k;
      volume += c.nx * c.ny;
    }
    EXPECT_EQ(volume, n * n) << "plane " << k;
  }
}

TEST(BtioPattern, PaperTable1DataVolumes) {
  // D_step: class B = 42 MByte, class C = 170 MByte (paper Table 1).
  const Pattern b(class_grid_size('B'), 4, 0);
  const Pattern c(class_grid_size('C'), 4, 0);
  EXPECT_NEAR(static_cast<double>(b.global_step_bytes()) / 1e6, 42.4, 0.5);
  EXPECT_NEAR(static_cast<double>(c.global_step_bytes()) / 1e6, 170.1, 0.5);
}

struct Table2Row {
  char cls;
  int procs;
  Off nblock;
  Off sblock;
};

class Table2 : public ::testing::TestWithParam<Table2Row> {};

TEST_P(Table2, MatchesPaper) {
  const Table2Row row = GetParam();
  // N_block and S_block vary slightly per rank when q does not divide N
  // (the paper: "a (nearly) constant value of S_block"); the paper rows
  // are the per-rank averages, so check the mean across ranks tightly and
  // every rank loosely.
  double nblock_sum = 0, sblock_sum = 0;
  for (int r = 0; r < row.procs; ++r) {
    const Pattern pat(class_grid_size(row.cls), row.procs, r);
    nblock_sum += static_cast<double>(pat.nblock());
    sblock_sum += pat.avg_sblock_bytes();
    EXPECT_NEAR(static_cast<double>(pat.nblock()),
                static_cast<double>(row.nblock),
                static_cast<double>(row.nblock) * 0.05);
  }
  EXPECT_NEAR(nblock_sum / row.procs, static_cast<double>(row.nblock),
              static_cast<double>(row.nblock) * 0.002);
  EXPECT_NEAR(sblock_sum / row.procs, static_cast<double>(row.sblock),
              static_cast<double>(row.sblock) * 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    PaperRows, Table2,
    ::testing::Values(Table2Row{'B', 4, 5202, 2040},
                      Table2Row{'B', 9, 3468, 1360},
                      Table2Row{'B', 16, 2601, 1020},
                      Table2Row{'B', 25, 2080, 816},
                      Table2Row{'C', 4, 13122, 3240},
                      Table2Row{'C', 9, 8748, 2160},
                      Table2Row{'C', 16, 6561, 1620},
                      Table2Row{'C', 25, 5248, 1296}),
    [](const ::testing::TestParamInfo<Table2Row>& pinfo) {
      return std::string(1, pinfo.param.cls) + "_p" +
             std::to_string(pinfo.param.procs);
    });

TEST(BtioPattern, FiletypeIsNavigableAndSized) {
  for (int P : {4, 9, 16}) {
    for (int r = 0; r < P; ++r) {
      const Pattern pat(17, P, r);
      const dt::Type ft = pat.filetype();
      EXPECT_TRUE(fotf::file_navigable(ft)) << "P=" << P << " r=" << r;
      EXPECT_EQ(ft->size(), pat.local_doubles() * 8);
      EXPECT_EQ(ft->extent(), pat.global_step_bytes());
      // The corner cell (q-1, q-1, k) is byte-adjacent to (0, 0, k+1), so
      // ranks on the diagonal see one merged pair of lines.
      EXPECT_GE(dt::block_count(ft), pat.nblock() - 1);
      EXPECT_LE(dt::block_count(ft), pat.nblock());
    }
  }
  // Degenerate single-process case: the whole grid, one dense block.
  const Pattern solo(17, 1, 0);
  EXPECT_TRUE(solo.filetype()->is_contiguous());
  EXPECT_EQ(dt::block_count(solo.filetype()), 1);
}

TEST(BtioPattern, FiletypesPartitionTheFile) {
  const Off n = 11;
  const int P = 4;
  Off total = 0;
  for (int r = 0; r < P; ++r) total += Pattern(n, P, r).local_doubles();
  EXPECT_EQ(total, 5 * n * n * n);
}

TEST(BtioPattern, MemtypeGhostHandling) {
  const Pattern pat(10, 4, 1, /*ghost=*/2);
  const dt::Type mt = pat.memtype();
  EXPECT_EQ(mt->size(), pat.local_doubles() * 8);
  EXPECT_EQ(mt->extent(), pat.padded_doubles() * 8);
  EXPECT_FALSE(mt->is_contiguous());
  // ghost = 0 makes the memtype dense.
  const Pattern dense(10, 4, 1, /*ghost=*/0);
  EXPECT_TRUE(dense.memtype()->is_contiguous());
  EXPECT_EQ(dense.padded_doubles(), dense.local_doubles());
}

TEST(BtioPattern, FillMarksGhostsAndInterior) {
  const Pattern pat(8, 4, 2, /*ghost=*/1);
  std::vector<double> buf(to_size(pat.padded_doubles()), 0.0);
  pat.fill(buf, /*step=*/3);
  // Pack through the memtype: every packed value must be an interior
  // value (no sentinel), matching expected_value.
  const dt::Type mt = pat.memtype();
  ByteVec packed = testutil::reference_pack(as_bytes(buf.data()), 1, mt);
  ASSERT_EQ(to_off(packed.size()), pat.local_doubles() * 8);
  const double* vals = reinterpret_cast<const double*>(packed.data());
  std::size_t at = 0;
  for (const CellGeom& c : pat.cells()) {
    for (Off z = 0; z < c.nz; ++z)
      for (Off y = 0; y < c.ny; ++y)
        for (Off x = 0; x < c.nx; ++x)
          for (Off comp = 0; comp < 5; ++comp) {
            EXPECT_EQ(vals[at++],
                      Pattern::expected_value(comp, c.xs + x, c.ys + y,
                                              c.zs + z, pat.n(), 3));
          }
  }
}

struct BtioRunParams {
  mpiio::Method method;
  int nprocs;
  Off n;
  Off ghost;
};

class BtioEndToEnd : public ::testing::TestWithParam<BtioRunParams> {};

TEST_P(BtioEndToEnd, CollectiveWriteMatchesReference) {
  const BtioRunParams p = GetParam();
  const int nsteps = 2;
  auto fs = pfs::MemFile::create();

  sim::Runtime::run(p.nprocs, [&](sim::Comm& comm) {
    const Pattern pat(p.n, p.nprocs, comm.rank(), p.ghost);
    mpiio::Options o;
    o.method = p.method;
    o.file_buffer_size = 1 << 16;
    mpiio::File f = mpiio::File::open(comm, fs, o);
    f.set_view(0, dt::double_(), pat.filetype());
    std::vector<double> buf(to_size(pat.padded_doubles()));
    const Off etypes_per_step = pat.local_doubles();
    for (int s = 0; s < nsteps; ++s) {
      pat.fill(buf, s);
      EXPECT_EQ(f.write_at_all(s * etypes_per_step, buf.data(), 1,
                               pat.memtype()),
                pat.local_doubles() * 8);
    }
    // Collective read-back of step 0 into a fresh buffer.
    std::vector<double> back(to_size(pat.padded_doubles()), -1.0);
    EXPECT_EQ(f.read_at_all(0, back.data(), 1, pat.memtype()),
              pat.local_doubles() * 8);
    std::vector<double> want(to_size(pat.padded_doubles()));
    pat.fill(want, 0);
    // Interior values equal; ghosts in `back` keep the -1 fill.
    const ByteVec got_stream =
        testutil::reference_pack(as_bytes(back.data()), 1, pat.memtype());
    const ByteVec want_stream =
        testutil::reference_pack(as_bytes(want.data()), 1, pat.memtype());
    EXPECT_EQ(got_stream, want_stream);
  });

  // The file must equal the reference field for every step.
  const Off step_doubles = 5 * p.n * p.n * p.n;
  ASSERT_EQ(fs->size(), nsteps * step_doubles * 8);
  const ByteVec img = fs->contents();
  std::vector<double> ref(to_size(step_doubles));
  for (int s = 0; s < nsteps; ++s) {
    Pattern::reference_step(ref, p.n, s);
    const double* got = reinterpret_cast<const double*>(img.data()) +
                        Off{s} * step_doubles;
    for (Off i = 0; i < step_doubles; ++i)
      ASSERT_EQ(got[to_size(i)], ref[to_size(i)]) << "step " << s << " i=" << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    SmallGrids, BtioEndToEnd,
    ::testing::Values(BtioRunParams{mpiio::Method::Listless, 4, 12, 2},
                      BtioRunParams{mpiio::Method::ListBased, 4, 12, 2},
                      BtioRunParams{mpiio::Method::Listless, 9, 13, 1},
                      BtioRunParams{mpiio::Method::ListBased, 9, 13, 1},
                      BtioRunParams{mpiio::Method::Listless, 1, 8, 0},
                      BtioRunParams{mpiio::Method::Listless, 16, 16, 2}),
    [](const ::testing::TestParamInfo<BtioRunParams>& pinfo) {
      const BtioRunParams& p = pinfo.param;
      return std::string(p.method == mpiio::Method::ListBased ? "list"
                                                              : "listless") +
             "_p" + std::to_string(p.nprocs) + "_n" + std::to_string(p.n) +
             "_g" + std::to_string(p.ghost);
    });

}  // namespace
}  // namespace llio::btio
