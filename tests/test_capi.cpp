// The C API shim: happy paths, error-code mapping, and handle lifecycles.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "capi/llio_mpi.h"

namespace {

struct BodyCtx {
  LLIO_Storage storage;
  int failures = 0;
};

#define C_OK(call) EXPECT_EQ((call), LLIO_SUCCESS) << llio_last_error()

TEST(CApi, TypesSizeExtentLifecycle) {
  LLIO_Datatype dbl = nullptr, vec = nullptr;
  C_OK(llio_type_double(&dbl));
  llio_offset size = 0, lb = -1, extent = 0;
  C_OK(llio_type_size(dbl, &size));
  EXPECT_EQ(size, 8);
  C_OK(llio_type_vector(4, 2, 5, dbl, &vec));
  C_OK(llio_type_size(vec, &size));
  EXPECT_EQ(size, 64);
  C_OK(llio_type_extent(vec, &lb, &extent));
  EXPECT_EQ(lb, 0);
  EXPECT_EQ(extent, (3 * 5 + 2) * 8);
  C_OK(llio_type_free(&vec));
  EXPECT_EQ(vec, nullptr);
  C_OK(llio_type_free(&dbl));
}

TEST(CApi, ErrorCodesAndMessages) {
  LLIO_Datatype byte = nullptr, bad = nullptr;
  C_OK(llio_type_byte(&byte));
  // Negative count -> type error with a message.
  EXPECT_EQ(llio_type_contiguous(-3, byte, &bad), LLIO_ERR_TYPE);
  EXPECT_NE(std::strlen(llio_last_error()), 0u);
  // Null arguments -> ARG.
  EXPECT_EQ(llio_type_size(nullptr, nullptr), LLIO_ERR_ARG);
  EXPECT_EQ(llio_run(2, nullptr, nullptr), LLIO_ERR_ARG);
  C_OK(llio_type_free(&byte));
}

TEST(CApi, PackUnpackRoundTrip) {
  LLIO_Datatype intt = nullptr, vec = nullptr;
  C_OK(llio_type_int(&intt));
  C_OK(llio_type_vector(3, 1, 2, intt, &vec));
  int src[6] = {1, 0, 2, 0, 3, 0};
  llio_offset need = 0;
  C_OK(llio_pack_size(1, vec, &need));
  EXPECT_EQ(need, 12);
  std::vector<char> buf(static_cast<std::size_t>(need));
  llio_offset pos = 0;
  C_OK(llio_pack(src, 1, vec, buf.data(), need, &pos));
  EXPECT_EQ(pos, 12);
  int dst[6] = {0, 9, 0, 9, 0, 9};
  pos = 0;
  C_OK(llio_unpack(buf.data(), need, &pos, dst, 1, vec));
  EXPECT_EQ(dst[0], 1);
  EXPECT_EQ(dst[2], 2);
  EXPECT_EQ(dst[4], 3);
  EXPECT_EQ(dst[1], 9);  // gaps untouched
  // Overflow is rejected and position unchanged.
  pos = 8;
  EXPECT_EQ(llio_pack(src, 1, vec, buf.data(), need, &pos), LLIO_ERR_ARG);
  EXPECT_EQ(pos, 8);
  C_OK(llio_type_free(&vec));
  C_OK(llio_type_free(&intt));
}

namespace fileio {
void body(LLIO_Comm comm, void* user) {
  auto* ctx = static_cast<BodyCtx*>(user);
  int rank = -1, size = 0;
  if (llio_comm_rank(comm, &rank) != LLIO_SUCCESS ||
      llio_comm_size(comm, &size) != LLIO_SUCCESS) {
    ctx->failures++;
    return;
  }
  LLIO_File f = nullptr;
  LLIO_Datatype byte = nullptr, vec = nullptr, placed = nullptr,
                ft = nullptr;
  if (llio_file_open(comm, ctx->storage, LLIO_METHOD_LIST_BASED, &f) !=
      LLIO_SUCCESS) {
    ctx->failures++;
    return;
  }
  llio_type_byte(&byte);
  llio_type_create_hvector(4, 8, size * 8, byte, &vec);
  const llio_offset bl = 1;
  const llio_offset disp = rank * 8;
  llio_type_create_hindexed(1, &bl, &disp, vec, &placed);
  llio_type_create_resized(placed, 0, 4 * static_cast<llio_offset>(size) * 8,
                           &ft);
  if (llio_file_set_view(f, 0, byte, ft) != LLIO_SUCCESS) ctx->failures++;

  char data[32];
  for (int i = 0; i < 32; ++i)
    data[i] = static_cast<char>(rank * 40 + i);
  llio_offset moved = 0;
  if (llio_file_write_at_all(f, 0, data, 32, byte, &moved) != LLIO_SUCCESS ||
      moved != 32)
    ctx->failures++;
  char back[32] = {};
  if (llio_file_read_at_all(f, 0, back, 32, byte, &moved) != LLIO_SUCCESS ||
      std::memcmp(back, data, 32) != 0)
    ctx->failures++;
  llio_barrier(comm);

  llio_type_free(&byte);
  llio_type_free(&vec);
  llio_type_free(&placed);
  llio_type_free(&ft);
  llio_file_close(&f);
}
}  // namespace fileio

TEST(CApi, CollectiveFileRoundTrip) {
  BodyCtx ctx;
  C_OK(llio_storage_mem_create(&ctx.storage));
  C_OK(llio_run(3, fileio::body, &ctx));
  EXPECT_EQ(ctx.failures, 0);
  llio_offset size = 0;
  C_OK(llio_storage_size(ctx.storage, &size));
  EXPECT_EQ(size, 3 * 32);
  C_OK(llio_storage_free(&ctx.storage));
}

TEST(CApi, PsrvStorageRoundTripAllRequestClasses) {
  // The same collective round trip, but over the parallel file-server
  // pool in each request class: the C shim needs no psrv-specific code
  // beyond the storage constructor.
  for (const char* cls : {"contig", "list", "view"}) {
    BodyCtx ctx;
    C_OK(llio_storage_psrv_create(3, 64, cls, &ctx.storage));
    C_OK(llio_run(3, fileio::body, &ctx));
    EXPECT_EQ(ctx.failures, 0) << cls;
    llio_offset size = 0;
    C_OK(llio_storage_size(ctx.storage, &size));
    EXPECT_EQ(size, 3 * 32) << cls;
    C_OK(llio_storage_free(&ctx.storage));
  }
  LLIO_Storage bad = nullptr;
  EXPECT_EQ(llio_storage_psrv_create(2, 64, "bulk", &bad), LLIO_ERR_ARG);
  EXPECT_EQ(llio_storage_psrv_create(2, 64, nullptr, &bad), LLIO_ERR_ARG);
}

namespace darray_check {
void body(LLIO_Comm comm, void* user) {
  auto* ctx = static_cast<BodyCtx*>(user);
  int rank = -1;
  llio_comm_rank(comm, &rank);
  LLIO_Datatype dbl = nullptr, ft = nullptr;
  llio_type_double(&dbl);
  const llio_offset gsizes[] = {8, 6};
  const int distribs[] = {LLIO_DISTRIBUTE_NONE, LLIO_DISTRIBUTE_CYCLIC};
  const llio_offset dargs[] = {LLIO_DISTRIBUTE_DFLT_DARG, 2};
  const llio_offset psizes[] = {1, 3};
  if (llio_type_create_darray(3, rank, 2, gsizes, distribs, dargs, psizes,
                              LLIO_ORDER_FORTRAN, dbl, &ft) != LLIO_SUCCESS)
    ctx->failures++;
  llio_offset sz = 0;
  llio_type_size(ft, &sz);
  if (sz != 8 * 2 * 8) ctx->failures++;  // 2 of 6 columns, 8 rows, doubles
  llio_type_free(&ft);
  llio_type_free(&dbl);
}
}  // namespace darray_check

TEST(CApi, DarrayConstruction) {
  BodyCtx ctx;
  ctx.storage = nullptr;
  C_OK(llio_run(3, darray_check::body, &ctx));
  EXPECT_EQ(ctx.failures, 0);
}

namespace fault_body {
void body(LLIO_Comm, void*) {
  throw std::runtime_error("rank body exploded");
}
}  // namespace fault_body

TEST(CApi, RankExceptionsSurfaceThroughRun) {
  EXPECT_NE(llio_run(2, fault_body::body, nullptr), LLIO_SUCCESS);
  EXPECT_NE(std::strlen(llio_last_error()), 0u);
}

TEST(CApi, PosixStorage) {
  const std::string path = ::testing::TempDir() + "/llio_capi.bin";
  LLIO_Storage st = nullptr;
  C_OK(llio_storage_posix_open(path.c_str(), /*truncate=*/1, &st));
  llio_offset size = -1;
  C_OK(llio_storage_size(st, &size));
  EXPECT_EQ(size, 0);
  C_OK(llio_storage_free(&st));
  std::remove(path.c_str());
}

}  // namespace
