// Collective two-phase read/write through both engines: partitioned
// fileviews, coverage optimization, IOP subsets, uneven participation.
#include <gtest/gtest.h>

#include <atomic>

#include "io_test_util.hpp"
#include "mpiio/twophase.hpp"

namespace llio::mpiio {
namespace {

using iotest::make_nc_buffer;
using iotest::noncontig_filetype;
using iotest::payload_stream;

struct CollParams {
  Method method;
  int nprocs;
  int io_procs;  // 0 = all
  bool nc_mem;
  int depth = 0;  // pipeline_depth (0 = serial window loop)
};

class CollectiveIo : public ::testing::TestWithParam<CollParams> {};

TEST_P(CollectiveIo, PartitionedWriteProducesExactImage) {
  const CollParams p = GetParam();
  const Off nblock = 7, sblock = 8;
  const Off nbytes = 3 * nblock * sblock;
  auto fs = pfs::MemFile::create();

  sim::Runtime::run(p.nprocs, [&](sim::Comm& comm) {
    Options o;
    o.method = p.method;
    o.file_buffer_size = 512;
    o.pack_buffer_size = 128;
    o.io_procs = p.io_procs;
    o.pipeline_depth = p.depth;
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(),
               noncontig_filetype(nblock, sblock, p.nprocs, comm.rank()));
    const ByteVec stream = payload_stream(comm.rank(), nbytes);
    if (p.nc_mem) {
      auto buf = make_nc_buffer(stream);
      EXPECT_EQ(f.write_at_all(0, buf.storage.data(), buf.count, buf.memtype),
                nbytes);
    } else {
      EXPECT_EQ(f.write_at_all(0, stream.data(), nbytes, dt::byte()), nbytes);
    }

    // Collective read-back into the opposite layout.
    ByteVec back(to_size(nbytes), Byte{0});
    EXPECT_EQ(f.read_at_all(0, back.data(), nbytes, dt::byte()), nbytes);
    EXPECT_EQ(back, stream);
  });

  const ByteVec want = iotest::expected_image(
      p.nprocs,
      [&](int r) { return noncontig_filetype(nblock, sblock, p.nprocs, r); },
      0, 0, nbytes);
  ByteVec got = fs->contents();
  got.resize(want.size(), Byte{0});
  EXPECT_EQ(got, want);
}

std::string coll_name(const ::testing::TestParamInfo<CollParams>& info) {
  const CollParams& p = info.param;
  std::string s = p.method == Method::ListBased ? "list" : "listless";
  s += "_p" + std::to_string(p.nprocs);
  s += "_iop" + std::to_string(p.io_procs);
  s += p.nc_mem ? "_ncmem" : "_cmem";
  s += "_d" + std::to_string(p.depth);
  return s;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CollectiveIo,
    ::testing::Values(CollParams{Method::ListBased, 1, 0, false},
                      CollParams{Method::ListBased, 2, 0, false},
                      CollParams{Method::ListBased, 4, 0, false},
                      CollParams{Method::ListBased, 4, 0, true},
                      CollParams{Method::ListBased, 4, 1, false},
                      CollParams{Method::ListBased, 3, 2, true},
                      CollParams{Method::Listless, 1, 0, false},
                      CollParams{Method::Listless, 2, 0, false},
                      CollParams{Method::Listless, 4, 0, false},
                      CollParams{Method::Listless, 4, 0, true},
                      CollParams{Method::Listless, 4, 1, false},
                      CollParams{Method::Listless, 3, 2, true},
                      // Same matrix again with the pipelined window loop.
                      CollParams{Method::ListBased, 1, 0, false, 2},
                      CollParams{Method::ListBased, 2, 0, false, 2},
                      CollParams{Method::ListBased, 4, 0, false, 2},
                      CollParams{Method::ListBased, 4, 0, true, 2},
                      CollParams{Method::ListBased, 4, 1, false, 2},
                      CollParams{Method::ListBased, 3, 2, true, 2},
                      CollParams{Method::Listless, 1, 0, false, 2},
                      CollParams{Method::Listless, 2, 0, false, 2},
                      CollParams{Method::Listless, 4, 0, false, 2},
                      CollParams{Method::Listless, 4, 0, true, 2},
                      CollParams{Method::Listless, 4, 1, false, 2},
                      CollParams{Method::Listless, 3, 2, true, 2}),
    coll_name);

class CollectiveBehaviors : public ::testing::TestWithParam<Method> {};

TEST_P(CollectiveBehaviors, FullCoverageSkipsPreRead) {
  // When the ranks' writes tile the file range completely, the merge
  // optimization must avoid reading the file (paper §2.3 / §3.2.3).
  const int P = 4;
  const Off nblock = 16, sblock = 8;
  const Off nbytes = 2 * nblock * sblock;
  auto fs = pfs::MemFile::create();
  fs->resize(P * nbytes);  // pre-size so a pre-read would find data
  std::atomic<std::uint64_t> reads{0};
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    o.file_buffer_size = 512;
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(),
               noncontig_filetype(nblock, sblock, P, comm.rank()));
    const ByteVec stream = payload_stream(comm.rank(), nbytes);
    fs->reset_stats();
    comm.barrier();
    f.write_at_all(0, stream.data(), nbytes, dt::byte());
    comm.barrier();
    if (comm.rank() == 0) reads = fs->stats().read_bytes;
  });
  EXPECT_EQ(reads.load(), 0u);
}

TEST_P(CollectiveBehaviors, PartialCoveragePreservesOldData) {
  // Only half the ranks' blocks are written: old file contents in the
  // gaps must survive the read-modify-write.
  const int P = 2;
  const Off nblock = 8, sblock = 8;
  const Off nbytes = nblock * sblock;
  auto fs = pfs::MemFile::create();
  const Off file_size = 2 * nblock * sblock;
  {
    ByteVec old(to_size(file_size));
    for (std::size_t i = 0; i < old.size(); ++i)
      old[i] = Byte{static_cast<unsigned char>(0xB0 + (i & 0xF))};
    fs->pwrite(0, old);
  }
  const ByteVec before = fs->contents();
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    o.file_buffer_size = 64;
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(),
               noncontig_filetype(nblock, sblock, P, comm.rank()));
    // Only rank 0 writes; rank 1 participates with zero data.
    const ByteVec stream = payload_stream(comm.rank(), nbytes);
    const Off mine = comm.rank() == 0 ? nbytes : 0;
    f.write_at_all(0, stream.data(), mine, dt::byte());
  });
  const ByteVec after = fs->contents();
  ASSERT_EQ(after.size(), before.size());
  for (Off i = 0; i < file_size; ++i) {
    const Off round = i / (2 * sblock);
    const Off within = i % (2 * sblock);
    if (within < sblock) {
      // Rank 0's block: overwritten.
      EXPECT_EQ(after[to_size(i)],
                iotest::payload_byte(0, round * sblock + within))
          << i;
    } else {
      // Rank 1's block: untouched.
      EXPECT_EQ(after[to_size(i)], before[to_size(i)]) << i;
    }
  }
}

TEST_P(CollectiveBehaviors, DisjointOffsetsAcrossRanks) {
  // Ranks write different step offsets of the same view (BTIO-like).
  const int P = 3;
  const Off nblock = 4, sblock = 16;
  const Off step = nblock * sblock;
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    o.file_buffer_size = 128;
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(),
               noncontig_filetype(nblock, sblock, P, comm.rank()));
    for (int s = 0; s < 3; ++s) {
      const ByteVec stream = payload_stream(comm.rank() + 10 * s, step);
      EXPECT_EQ(f.write_at_all(s * step, stream.data(), step, dt::byte()),
                step);
    }
    for (int s = 0; s < 3; ++s) {
      ByteVec back(to_size(step));
      EXPECT_EQ(f.read_at_all(s * step, back.data(), step, dt::byte()), step);
      EXPECT_EQ(back, payload_stream(comm.rank() + 10 * s, step));
    }
  });
}

TEST_P(CollectiveBehaviors, AllRanksEmptyIsANoop) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(3, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(), noncontig_filetype(4, 8, 3, comm.rank()));
    EXPECT_EQ(f.write_at_all(0, nullptr, 0, dt::byte()), 0);
    EXPECT_EQ(f.read_at_all(0, nullptr, 0, dt::byte()), 0);
  });
  EXPECT_EQ(fs->size(), 0);
}

TEST_P(CollectiveBehaviors, DifferentDisplacementsPerRank) {
  // Ranks use distinct displacements (no mergeview possible); the write
  // must still land each rank's data at disp + its view.
  const int P = 2;
  const Off region = 256;
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    o.file_buffer_size = 64;
    File f = File::open(comm, fs, o);
    const Off disp = comm.rank() * region;
    f.set_view(disp, dt::byte(), noncontig_filetype(4, 8, 2, 0));
    const ByteVec stream = payload_stream(comm.rank(), 64);
    EXPECT_EQ(f.write_at_all(0, stream.data(), 64, dt::byte()), 64);
    ByteVec back(64);
    EXPECT_EQ(f.read_at_all(0, back.data(), 64, dt::byte()), 64);
    EXPECT_EQ(back, stream);
  });
  // Rank r's blocks are at r*region + k*16.
  const ByteVec img = fs->contents();
  for (int r = 0; r < P; ++r) {
    for (Off s = 0; s < 64; ++s) {
      const Off inst = s / 32;
      const Off within = s % 32;
      const Off block = within / 8;
      const Off j = within % 8;
      const Off abs = Off{r} * region + inst * 64 + block * 16 + j;
      EXPECT_EQ(img[to_size(abs)], iotest::payload_byte(r, s))
          << "r=" << r << " s=" << s;
    }
  }
}

TEST_P(CollectiveBehaviors, PipelinedWriteIsBitIdenticalToSerial) {
  // pipeline_depth only changes scheduling, never the bytes: the same
  // partitioned write at depth 0 and depth 2 must produce identical
  // images, including RMW-preserved gap bytes.
  const int P = 3;
  const Off nblock = 11, sblock = 8;
  const Off nbytes = 2 * nblock * sblock;
  auto run = [&](int depth) {
    auto fs = pfs::MemFile::create();
    // Pre-fill so partially covered windows exercise the pre-read path.
    ByteVec old(to_size(P * nbytes), Byte{0xCD});
    fs->pwrite(0, old);
    sim::Runtime::run(P, [&](sim::Comm& comm) {
      Options o;
      o.method = GetParam();
      o.file_buffer_size = 96;  // many windows per IOP
      o.pipeline_depth = depth;
      File f = File::open(comm, fs, o);
      f.set_view(0, dt::byte(),
                 noncontig_filetype(nblock, sblock, P, comm.rank()));
      const ByteVec stream = payload_stream(comm.rank(), nbytes);
      // Ranks 0 and 1 write; rank 2 leaves its blocks as 0xCD gaps.
      const Off mine = comm.rank() < 2 ? nbytes : 0;
      EXPECT_EQ(f.write_at_all(0, stream.data(), mine, dt::byte()), mine);
      ByteVec back(to_size(nbytes), Byte{0});
      EXPECT_EQ(f.read_at_all(0, back.data(), nbytes, dt::byte()), nbytes);
      if (comm.rank() < 2) {
        EXPECT_EQ(back, stream);
      }
    });
    return fs->contents();
  };
  EXPECT_EQ(run(0), run(2));
}

TEST_P(CollectiveBehaviors, MergeviewSkipCounterTracksDensity) {
  // Dense tiling: every IOP window is provably hole-free, so the engines
  // must report elided pre-reads.  Holey tiling (the last rank abstains,
  // leaving its blocks as gaps): exactly none.  Off: never, by contract.
  const int P = 3;
  const Off nblock = 8, sblock = 8;
  const Off nbytes = nblock * sblock;
  auto run = [&](bool holey, MergeContig mode) {
    auto fs = pfs::MemFile::create();
    std::atomic<std::uint64_t> skipped{0};
    sim::Runtime::run(P, [&](sim::Comm& comm) {
      Options o;
      o.method = GetParam();
      o.file_buffer_size = 64;
      o.merge_contig = mode;
      File f = File::open(comm, fs, o);
      f.set_view(0, dt::byte(),
                 noncontig_filetype(nblock, sblock, P, comm.rank()));
      const ByteVec stream = payload_stream(comm.rank(), nbytes);
      const Off mine = holey && comm.rank() == P - 1 ? 0 : nbytes;
      EXPECT_EQ(f.write_at_all(0, stream.data(), mine, dt::byte()), mine);
      skipped.fetch_add(f.last_stats().preread_skipped_windows);
    });
    return skipped.load();
  };
  EXPECT_GT(run(false, MergeContig::Auto), 0u);
  EXPECT_EQ(run(true, MergeContig::Auto), 0u);
  EXPECT_EQ(run(false, MergeContig::Off), 0u);
}

TEST_P(CollectiveBehaviors, DenseDisjointBypassSkipsExchange) {
  // Every rank's restriction is one contiguous extent (dense filetype,
  // per-rank displacement): the collective must bypass pack+alltoall and
  // write directly, flagging merge_contig in the stats.
  const int P = 3;
  const Off n = 64;
  auto fs = pfs::MemFile::create();
  std::atomic<int> bypassed{0};
  std::atomic<Off> data_sent{0};
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    o.file_buffer_size = 32;
    File f = File::open(comm, fs, o);
    f.set_view(comm.rank() * n, dt::byte(), dt::byte());
    const ByteVec stream = payload_stream(comm.rank(), n);
    EXPECT_EQ(f.write_at_all(0, stream.data(), n, dt::byte()), n);
    bypassed.fetch_add(f.last_stats().merge_contig_ops > 0 ? 1 : 0);
    data_sent.fetch_add(f.last_stats().data_bytes_sent);
    ByteVec back(to_size(n));
    EXPECT_EQ(f.read_at_all(0, back.data(), n, dt::byte()), n);
    EXPECT_EQ(back, stream);
  });
  EXPECT_EQ(bypassed.load(), P);
  EXPECT_EQ(data_sent.load(), 0);
  // The file image is the concatenation of the per-rank payloads.
  const ByteVec img = fs->contents();
  ASSERT_EQ(img.size(), to_size(P * n));
  for (int r = 0; r < P; ++r)
    for (Off s = 0; s < n; ++s)
      EXPECT_EQ(img[to_size(r * n + s)], iotest::payload_byte(r, s));
}

INSTANTIATE_TEST_SUITE_P(BothMethods, CollectiveBehaviors,
                         ::testing::Values(Method::ListBased,
                                           Method::Listless),
                         [](const ::testing::TestParamInfo<Method>& pinfo) {
                           return pinfo.param == Method::ListBased
                                      ? "list_based"
                                      : "listless";
                         });

TEST(CollectiveStats, ListEngineShipsLists) {
  const int P = 4;
  const Off nblock = 64, sblock = 8;
  const Off nbytes = 2 * nblock * sblock;
  auto fs = pfs::MemFile::create();
  std::atomic<Off> list_bytes{0}, data_bytes{0};
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    Options o;
    o.method = Method::ListBased;
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(),
               noncontig_filetype(nblock, sblock, P, comm.rank()));
    const ByteVec stream = payload_stream(comm.rank(), nbytes);
    f.write_at_all(0, stream.data(), nbytes, dt::byte());
    list_bytes.fetch_add(f.last_stats().list_bytes_sent);
    data_bytes.fetch_add(f.last_stats().data_bytes_sent);
  });
  // Every 8-byte block costs a 16-byte tuple: the paper's 2x metadata
  // blow-up for double-sized blocks (§2.3).
  EXPECT_EQ(data_bytes.load(), P * nbytes);
  EXPECT_EQ(list_bytes.load(), 2 * P * nbytes);
}

TEST(CollectiveStats, ListlessShipsNoLists) {
  const int P = 4;
  const Off nblock = 64, sblock = 8;
  const Off nbytes = 2 * nblock * sblock;
  auto fs = pfs::MemFile::create();
  std::atomic<Off> list_bytes{0};
  std::atomic<std::uint64_t> meta_after_setview{0};
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    Options o;
    o.method = Method::Listless;
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(),
               noncontig_filetype(nblock, sblock, P, comm.rank()));
    const ByteVec stream = payload_stream(comm.rank(), nbytes);
    comm.barrier();
    comm.reset_stats();
    f.write_at_all(0, stream.data(), nbytes, dt::byte());
    list_bytes.fetch_add(f.last_stats().list_bytes_sent);
    // Meta traffic during the op is only the tiny range exchange.
    meta_after_setview.fetch_add(comm.stats().meta_bytes_sent);
  });
  EXPECT_EQ(list_bytes.load(), 0);
  EXPECT_LE(meta_after_setview.load(),
            static_cast<std::uint64_t>(P) * P * sizeof(AccessRange));
}

}  // namespace
}  // namespace llio::mpiio
