#include <gtest/gtest.h>

#include <thread>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/format.hpp"
#include "common/timer.hpp"

namespace llio {
namespace {

TEST(FloorDiv, PositiveOperands) {
  EXPECT_EQ(floor_div(7, 2), 3);
  EXPECT_EQ(floor_div(8, 2), 4);
  EXPECT_EQ(floor_div(0, 5), 0);
}

TEST(FloorDiv, NegativeNumerator) {
  EXPECT_EQ(floor_div(-1, 2), -1);
  EXPECT_EQ(floor_div(-4, 2), -2);
  EXPECT_EQ(floor_div(-7, 3), -3);
}

TEST(CeilDiv, Basics) {
  EXPECT_EQ(ceil_div(7, 2), 4);
  EXPECT_EQ(ceil_div(8, 2), 4);
  EXPECT_EQ(ceil_div(1, 8), 1);
  EXPECT_EQ(ceil_div(0, 8), 0);
}

TEST(Rounding, UpAndDown) {
  EXPECT_EQ(round_down(13, 4), 12);
  EXPECT_EQ(round_up(13, 4), 16);
  EXPECT_EQ(round_down(16, 4), 16);
  EXPECT_EQ(round_up(16, 4), 16);
}

TEST(ToSize, RejectsNegative) {
  EXPECT_THROW(to_size(-1), Error);
  EXPECT_EQ(to_size(42), 42u);
}

TEST(ErrorType, CarriesCodeAndMessage) {
  try {
    throw_error(Errc::InvalidView, "bad view");
    FAIL() << "should have thrown";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::InvalidView);
    EXPECT_NE(std::string(e.what()).find("bad view"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("InvalidView"), std::string::npos);
  }
}

TEST(ErrorType, RequireMacroPassesAndFails) {
  EXPECT_NO_THROW(LLIO_REQUIRE(true, Errc::Io, "never"));
  EXPECT_THROW(LLIO_REQUIRE(false, Errc::Io, "always"), Error);
}

TEST(ErrorType, EveryCodeHasAName) {
  for (int c = 0; c <= static_cast<int>(Errc::Internal); ++c)
    EXPECT_STRNE(errc_name(static_cast<Errc>(c)), "Unknown");
}

TEST(Format, Strprintf) {
  EXPECT_EQ(strprintf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(strprintf("empty"), "empty");
}

TEST(Format, HumanBytes) {
  EXPECT_EQ(human_bytes(8), "8 B");
  EXPECT_EQ(human_bytes(2048), "2.0 KiB");
  EXPECT_EQ(human_bytes(3 << 20), "3.0 MiB");
}

TEST(Timer, StopWatchAccumulates) {
  StopWatch w;
  w.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  w.stop();
  const double first = w.seconds();
  EXPECT_GT(first, 0.0);
  w.start();
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  w.stop();
  EXPECT_GT(w.seconds(), first);
  w.reset();
  EXPECT_EQ(w.seconds(), 0.0);
}

TEST(Timer, WallTimerMonotone) {
  WallTimer t;
  const double a = t.seconds();
  const double b = t.seconds();
  EXPECT_GE(b, a);
}

}  // namespace
}  // namespace llio
