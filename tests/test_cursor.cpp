#include <gtest/gtest.h>

#include "fotf/cursor.hpp"
#include "test_util.hpp"

namespace llio::fotf {
namespace {

using dt::Type;
using testutil::Rng;

/// Collect (mem, len) runs from a cursor, splitting nothing.
std::vector<dt::OlTuple> collect_runs(SegmentCursor& cur) {
  std::vector<dt::OlTuple> out;
  while (!cur.at_end()) {
    out.push_back({cur.run_mem(), cur.run_len()});
    cur.consume(cur.run_len());
  }
  return out;
}

/// Reference segment list for `count` instances via explicit flatten.
std::vector<dt::OlTuple> reference_runs(const Type& t, Off count) {
  const auto list = dt::flatten(t, /*coalesce=*/false);
  std::vector<dt::OlTuple> out;
  for (Off i = 0; i < count; ++i)
    for (const auto& tp : list.tuples())
      out.push_back({tp.off + i * t->extent(), tp.len});
  return out;
}

/// Byte-level (mem offset per stream byte) expansion of a run list.
std::vector<Off> byte_map(const std::vector<dt::OlTuple>& runs) {
  std::vector<Off> out;
  for (const auto& r : runs)
    for (Off j = 0; j < r.len; ++j) out.push_back(r.off + j);
  return out;
}

void expect_equivalent(const Type& t, Off count) {
  SegmentCursor cur(t, count);
  cur.seek(0);
  const auto got = byte_map(collect_runs(cur));
  const auto want = byte_map(reference_runs(t, count));
  ASSERT_EQ(got, want) << dt::to_string(t);
}

TEST(Cursor, BasicType) { expect_equivalent(dt::double_(), 3); }

TEST(Cursor, Vector) { expect_equivalent(dt::hvector(4, 2, 7, dt::byte()), 2); }

TEST(Cursor, VectorOfDoubles) {
  expect_equivalent(dt::vector(5, 1, 3, dt::double_()), 3);
}

TEST(Cursor, Indexed) {
  const Off bls[] = {3, 1, 2};
  const Off ds[] = {0, 10, 20};
  expect_equivalent(dt::hindexed(bls, ds, dt::byte()), 2);
}

TEST(Cursor, Struct) {
  const Off bls[] = {1, 2};
  const Off ds[] = {0, 12};
  const Type kids[] = {dt::int_(), dt::vector(2, 1, 2, dt::int_())};
  expect_equivalent(dt::struct_(bls, ds, kids), 2);
}

TEST(Cursor, ResizedTiling) {
  expect_equivalent(dt::resized(dt::hvector(2, 1, 3, dt::byte()), 0, 10), 4);
}

TEST(Cursor, NestedVectors) {
  const Type inner = dt::hvector(3, 2, 5, dt::byte());
  const Type outer = dt::hvector(2, 2, 40, dt::resized(inner, 0, 16));
  expect_equivalent(outer, 2);
}

TEST(Cursor, NonMonotoneStructOrder) {
  const Off bls[] = {1, 1};
  const Off ds[] = {8, 0};
  const Type kids[] = {dt::int_(), dt::int_()};
  expect_equivalent(dt::struct_(bls, ds, kids), 2);
}

TEST(Cursor, ZeroBlocksSkipped) {
  const Off bls[] = {2, 0, 3};
  const Off ds[] = {0, 50, 100};
  expect_equivalent(dt::hindexed(bls, ds, dt::byte()), 2);
}

TEST(Cursor, ZeroCount) {
  SegmentCursor cur(dt::double_(), 0);
  EXPECT_TRUE(cur.at_end());
  EXPECT_EQ(cur.total_bytes(), 0);
}

TEST(Cursor, SeekMatchesLinearPosition) {
  const Type t = dt::hvector(4, 3, 10, dt::byte());
  const Off count = 3;
  const auto want = byte_map(reference_runs(t, count));
  SegmentCursor cur(t, count);
  for (Off s = 0; s < to_off(want.size()); ++s) {
    cur.seek(s);
    ASSERT_FALSE(cur.at_end()) << "s=" << s;
    EXPECT_EQ(cur.run_mem(), want[to_size(s)]) << "s=" << s;
  }
  cur.seek(to_off(want.size()));
  EXPECT_TRUE(cur.at_end());
}

TEST(Cursor, SeekOutOfRangeThrows) {
  SegmentCursor cur(dt::double_(), 2);
  EXPECT_THROW(cur.seek(-1), Error);
  EXPECT_THROW(cur.seek(17), Error);
}

TEST(Cursor, PartialConsumeWalksBytes) {
  const Type t = dt::hvector(3, 4, 9, dt::byte());
  const auto want = byte_map(reference_runs(t, 2));
  SegmentCursor cur(t, 2);
  std::vector<Off> got;
  while (!cur.at_end()) {
    got.push_back(cur.run_mem());
    cur.consume(1);  // one byte at a time
  }
  EXPECT_EQ(got, want);
}

TEST(Cursor, VecRunDetection) {
  const Type t = dt::hvector(8, 2, 5, dt::byte());
  SegmentCursor cur(t, 1);
  SegmentCursor::VecRun vr;
  ASSERT_TRUE(cur.vec_run(vr));
  EXPECT_EQ(vr.mem, 0);
  EXPECT_EQ(vr.seg_bytes, 2);
  EXPECT_EQ(vr.stride, 5);
  EXPECT_EQ(vr.nsegs, 8);
  cur.consume_vec_segments(3);
  ASSERT_TRUE(cur.vec_run(vr));
  EXPECT_EQ(vr.mem, 15);
  EXPECT_EQ(vr.nsegs, 5);
  cur.consume_vec_segments(5);
  EXPECT_TRUE(cur.at_end());
}

TEST(Cursor, VecRunUnavailableMidSegment) {
  const Type t = dt::hvector(8, 2, 5, dt::byte());
  SegmentCursor cur(t, 1);
  cur.consume(1);
  SegmentCursor::VecRun vr;
  EXPECT_FALSE(cur.vec_run(vr));
}

TEST(Cursor, VecRunExtendsAcrossSeamlessInstances) {
  // The noncontig filetype shape: resized strided vector, tiled so the
  // stride continues seamlessly across instances.
  const Off nblock = 4, sblock = 8, stride = 32;
  const Type v = dt::hvector(nblock, sblock, stride, dt::byte());
  const Type ft = dt::resized(v, 0, nblock * stride);
  const Off instances = 5;
  SegmentCursor cur(ft, instances);
  SegmentCursor::VecRun vr;
  ASSERT_TRUE(cur.vec_run(vr));
  EXPECT_EQ(vr.seg_bytes, sblock);
  EXPECT_EQ(vr.stride, stride);
  EXPECT_EQ(vr.nsegs, instances * nblock);  // extended across instances
  // Consuming past the frame boundary re-seeks correctly.
  cur.consume_vec_segments(nblock + 2);
  EXPECT_EQ(cur.run_mem(), (nblock + 2) * stride);
  ASSERT_TRUE(cur.vec_run(vr));
  EXPECT_EQ(vr.nsegs, instances * nblock - (nblock + 2));
}

TEST(Cursor, VecRunDoesNotExtendAcrossGappedInstances) {
  // Extent leaves a hole after the last block: the run must stop at the
  // instance boundary.
  const Type v = dt::hvector(4, 8, 32, dt::byte());
  const Type ft = dt::resized(v, 0, 4 * 32 + 16);  // extra gap
  SegmentCursor cur(ft, 3);
  SegmentCursor::VecRun vr;
  ASSERT_TRUE(cur.vec_run(vr));
  EXPECT_EQ(vr.nsegs, 4);
}

TEST(Cursor, VecRunExtendsThroughContiguousWrapper) {
  // contiguous(3, resized(vector)) with seamless tiling: one run of 12.
  const Type v = dt::resized(dt::hvector(4, 2, 6, dt::byte()), 0, 24);
  const Type outer = dt::contiguous(3, v);
  SegmentCursor cur(outer, 2);  // 2 instances x 3 reps x 4 blocks
  SegmentCursor::VecRun vr;
  ASSERT_TRUE(cur.vec_run(vr));
  EXPECT_EQ(vr.nsegs, 24);
  EXPECT_EQ(vr.stride, 6);
}

TEST(Cursor, VecRunStopsAtSiblingBlocks) {
  // A struct with a second child after the vector: no extension upward.
  const Type v = dt::hvector(4, 2, 6, dt::byte());
  const Off bls[] = {1, 1};
  const Off ds[] = {0, 40};
  const Type kids[] = {v, dt::int_()};
  const Type st = dt::struct_(bls, ds, kids);
  SegmentCursor cur(st, 2);
  SegmentCursor::VecRun vr;
  ASSERT_TRUE(cur.vec_run(vr));
  EXPECT_EQ(vr.nsegs, 4);  // only the vector's own blocks
}

TEST(Cursor, StreamPosTracksConsumption) {
  const Type t = dt::hvector(4, 3, 7, dt::byte());
  SegmentCursor cur(t, 2);
  EXPECT_EQ(cur.stream_pos(), 0);
  cur.consume(2);
  EXPECT_EQ(cur.stream_pos(), 2);
  cur.seek(9);
  EXPECT_EQ(cur.stream_pos(), 9);
  cur.consume(cur.run_len());
  EXPECT_GT(cur.stream_pos(), 9);
}

TEST(Cursor, RandomTypesMatchReference) {
  Rng rng(2024);
  for (int i = 0; i < 150; ++i) {
    const Type t = testutil::random_type(rng, 3);
    if (t->size() == 0) continue;
    expect_equivalent(t, testutil::rnd(rng, 1, 3));
  }
}

TEST(Cursor, RandomSeeksMatchReference) {
  Rng rng(31337);
  for (int i = 0; i < 60; ++i) {
    const Type t = testutil::random_type(rng, 3);
    if (t->size() == 0) continue;
    const Off count = testutil::rnd(rng, 1, 3);
    const auto want = byte_map(reference_runs(t, count));
    SegmentCursor cur(t, count);
    for (int k = 0; k < 10; ++k) {
      const Off s = testutil::rnd(rng, 0, to_off(want.size()) - 1);
      cur.seek(s);
      ASSERT_FALSE(cur.at_end());
      EXPECT_EQ(cur.run_mem(), want[to_size(s)])
          << dt::to_string(t) << " s=" << s;
    }
  }
}

}  // namespace
}  // namespace llio::fotf
