// darray (MPI_Type_create_darray) correctness: ownership of every global
// element is checked against a brute-force HPF distribution predicate,
// and the per-rank types must partition the array exactly.
#include <gtest/gtest.h>

#include <numeric>

#include "dtype/flatten.hpp"
#include "test_util.hpp"

namespace llio::dt {
namespace {

/// Brute force: does `rank-coordinate c` own global index g in one
/// distributed dimension?
bool owns_dim(Off g, Distrib dist, Off darg, Off p, Off c, Off gsize) {
  switch (dist) {
    case Distrib::None:
      return true;
    case Distrib::Block: {
      const Off b = darg == kDfltDarg ? ceil_div(gsize, p) : darg;
      return g / b == c;
    }
    case Distrib::Cyclic: {
      const Off b = darg == kDfltDarg ? 1 : darg;
      return (g / b) % p == c;
    }
  }
  return false;
}

/// Element byte offsets a rank's darray selects, via flatten.
std::vector<Off> selected_offsets(const Type& t) {
  std::vector<Off> out;
  const OlList list = flatten(t, false);
  for (const OlTuple& tp : list.tuples())
    for (Off j = 0; j < tp.len; ++j) out.push_back(tp.off + j);
  return out;
}

/// Brute-force expected byte offsets for a rank (etype = byte).
std::vector<Off> expected_offsets(int /*nprocs*/, int rank,
                                  std::span<const Off> gsizes,
                                  std::span<const Distrib> dist,
                                  std::span<const Off> dargs,
                                  std::span<const Off> psizes, Order order) {
  const std::size_t nd = gsizes.size();
  std::vector<Off> coords(nd);
  int tmp = rank;
  for (std::size_t i = nd; i-- > 0;) {
    coords[i] = tmp % static_cast<int>(psizes[i]);
    tmp /= static_cast<int>(psizes[i]);
  }
  // Global linear offset: for Fortran order dim 0 is fastest; for C order
  // the last dim is fastest.
  Off total = 1;
  for (std::size_t d = 0; d < nd; ++d) total *= gsizes[d];
  std::vector<Off> out;
  std::vector<Off> idx(nd, 0);
  for (Off lin = 0; lin < total; ++lin) {
    // Decompose lin into per-dim indices in storage order.
    Off rem = lin;
    if (order == Order::Fortran) {
      for (std::size_t d = 0; d < nd; ++d) {
        idx[d] = rem % gsizes[d];
        rem /= gsizes[d];
      }
    } else {
      for (std::size_t d = nd; d-- > 0;) {
        idx[d] = rem % gsizes[d];
        rem /= gsizes[d];
      }
    }
    bool mine = true;
    for (std::size_t d = 0; d < nd && mine; ++d)
      mine = owns_dim(idx[d], dist[d], dargs[d], psizes[d], coords[d],
                      gsizes[d]);
    if (mine) out.push_back(lin);
  }
  return out;
}

void check_darray(int nprocs, std::span<const Off> gsizes,
                  std::span<const Distrib> dist, std::span<const Off> dargs,
                  std::span<const Off> psizes, Order order) {
  Off total_selected = 0;
  Off total = 1;
  for (Off g : gsizes) total *= g;
  for (int r = 0; r < nprocs; ++r) {
    const Type t =
        darray(nprocs, r, gsizes, dist, dargs, psizes, order, byte());
    EXPECT_EQ(t->extent(), total) << "rank " << r;
    EXPECT_EQ(t->lb(), 0);
    const auto got = selected_offsets(t);
    const auto want =
        expected_offsets(nprocs, r, gsizes, dist, dargs, psizes, order);
    EXPECT_EQ(got, want) << "rank " << r;
    total_selected += t->size();
  }
  EXPECT_EQ(total_selected, total);  // exact partition
}

TEST(Darray, Block1D) {
  const Off gs[] = {10};
  const Distrib d[] = {Distrib::Block};
  const Off da[] = {kDfltDarg};
  const Off ps[] = {3};
  check_darray(3, gs, d, da, ps, Order::Fortran);
}

TEST(Darray, Cyclic1D) {
  const Off gs[] = {11};
  const Distrib d[] = {Distrib::Cyclic};
  const Off da[] = {kDfltDarg};
  const Off ps[] = {3};
  check_darray(3, gs, d, da, ps, Order::Fortran);
}

TEST(Darray, BlockCyclic1D) {
  const Off gs[] = {23};
  const Distrib d[] = {Distrib::Cyclic};
  const Off da[] = {4};
  const Off ps[] = {3};
  check_darray(3, gs, d, da, ps, Order::Fortran);
}

TEST(Darray, Block2DFortran) {
  const Off gs[] = {8, 6};
  const Distrib d[] = {Distrib::Block, Distrib::Block};
  const Off da[] = {kDfltDarg, kDfltDarg};
  const Off ps[] = {2, 3};
  check_darray(6, gs, d, da, ps, Order::Fortran);
}

TEST(Darray, Block2DC) {
  const Off gs[] = {8, 6};
  const Distrib d[] = {Distrib::Block, Distrib::Block};
  const Off da[] = {kDfltDarg, kDfltDarg};
  const Off ps[] = {2, 3};
  check_darray(6, gs, d, da, ps, Order::C);
}

TEST(Darray, MixedDistributions3D) {
  const Off gs[] = {5, 7, 4};
  const Distrib d[] = {Distrib::Cyclic, Distrib::None, Distrib::Block};
  const Off da[] = {2, kDfltDarg, kDfltDarg};
  const Off ps[] = {2, 1, 2};
  check_darray(4, gs, d, da, ps, Order::Fortran);
  check_darray(4, gs, d, da, ps, Order::C);
}

TEST(Darray, CyclicWithPartialTailBlock) {
  // gsize chosen so the last block of the deal is partial.
  const Off gs[] = {10};
  const Distrib d[] = {Distrib::Cyclic};
  const Off da[] = {3};
  const Off ps[] = {2};
  check_darray(2, gs, d, da, ps, Order::Fortran);
}

TEST(Darray, RankBeyondDataIsEmpty) {
  // 4 processes, 2 elements: ranks 2 and 3 own nothing.
  const Off gs[] = {2};
  const Distrib d[] = {Distrib::Block};
  const Off da[] = {kDfltDarg};
  const Off ps[] = {4};
  for (int r = 0; r < 4; ++r) {
    const Type t = darray(4, r, gs, d, da, ps, Order::Fortran, byte());
    EXPECT_EQ(t->size(), r < 2 ? 1 : 0) << "rank " << r;
    EXPECT_EQ(t->extent(), 2);
  }
}

TEST(Darray, BlockMatchesSubarray) {
  // Pure block distribution == a subarray selection.
  const Off gs[] = {9, 8};
  const Distrib d[] = {Distrib::Block, Distrib::Block};
  const Off da[] = {kDfltDarg, kDfltDarg};
  const Off ps[] = {3, 2};
  for (int r = 0; r < 6; ++r) {
    const Type da_t = darray(6, r, gs, d, da, ps, Order::Fortran, double_());
    // coords, row-major: r = c0*2 + c1.
    const Off c0 = r / 2, c1 = r % 2;
    const Off b0 = 3, b1 = 4;
    const Off sub[] = {std::min<Off>(b0, gs[0] - b0 * c0),
                       std::min<Off>(b1, gs[1] - b1 * c1)};
    const Off starts[] = {b0 * c0, b1 * c1};
    const Type sa_t = subarray(gs, sub, starts, Order::Fortran, double_());
    EXPECT_EQ(flatten(da_t, false).tuples(), flatten(sa_t, false).tuples())
        << "rank " << r;
  }
}

TEST(Darray, UsableAsFileview) {
  // A column-cyclic matrix written via a darray fileview round-trips.
  const Off m = 16, n = 12;
  const int P = 3;
  auto check = [&](Order order) {
    for (int r = 0; r < P; ++r) {
      const Off gs_f[] = {m, n};
      const Distrib d[] = {Distrib::None, Distrib::Cyclic};
      const Off da[] = {kDfltDarg, 2};
      const Off ps[] = {1, P};
      const Type t = darray(P, r, gs_f, d, da, ps, order, double_());
      EXPECT_TRUE(t->is_monotone()) << "rank " << r;
      EXPECT_GT(t->size(), 0);
    }
  };
  check(Order::Fortran);
}

TEST(Darray, Validation) {
  const Off gs[] = {8};
  const Distrib d[] = {Distrib::Block};
  const Off da[] = {kDfltDarg};
  const Off ps[] = {2};
  EXPECT_THROW(darray(3, 0, gs, d, da, ps, Order::C, byte()), Error);  // grid
  EXPECT_THROW(darray(2, 2, gs, d, da, ps, Order::C, byte()), Error);  // rank
  const Off bad_da[] = {2};  // 2*2 < 8
  EXPECT_THROW(darray(2, 0, gs, d, bad_da, ps, Order::C, byte()), Error);
  const Distrib none[] = {Distrib::None};
  EXPECT_THROW(darray(2, 0, gs, none, da, ps, Order::C, byte()), Error);
}

TEST(Darray, RandomizedAgainstBruteForce) {
  testutil::Rng rng(4242);
  for (int iter = 0; iter < 25; ++iter) {
    const std::size_t nd = static_cast<std::size_t>(testutil::rnd(rng, 1, 3));
    std::vector<Off> gs(nd), da(nd), ps(nd);
    std::vector<Distrib> d(nd);
    int nprocs = 1;
    for (std::size_t i = 0; i < nd; ++i) {
      gs[i] = testutil::rnd(rng, 2, 9);
      switch (testutil::rnd(rng, 0, 2)) {
        case 0:
          d[i] = Distrib::None;
          ps[i] = 1;
          da[i] = kDfltDarg;
          break;
        case 1:
          d[i] = Distrib::Block;
          ps[i] = testutil::rnd(rng, 1, 3);
          da[i] = kDfltDarg;
          break;
        default:
          d[i] = Distrib::Cyclic;
          ps[i] = testutil::rnd(rng, 1, 3);
          da[i] = testutil::rnd(rng, 0, 1) ? kDfltDarg
                                           : testutil::rnd(rng, 1, 3);
          break;
      }
      nprocs *= static_cast<int>(ps[i]);
    }
    const Order order = testutil::rnd(rng, 0, 1) ? Order::C : Order::Fortran;
    check_darray(nprocs, gs, d, da, ps, order);
  }
}

}  // namespace
}  // namespace llio::dt
