#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dtype/datatype.hpp"
#include "test_util.hpp"

namespace llio::dt {
namespace {

TEST(BasicTypes, SizesAndExtents) {
  EXPECT_EQ(size(byte()), 1);
  EXPECT_EQ(size(char_()), 1);
  EXPECT_EQ(size(short_()), 2);
  EXPECT_EQ(size(int_()), 4);
  EXPECT_EQ(size(long_()), 8);
  EXPECT_EQ(size(float_()), 4);
  EXPECT_EQ(size(double_()), 8);
  EXPECT_EQ(extent(double_()), 8);
  EXPECT_TRUE(is_contiguous(double_()));
  EXPECT_TRUE(is_monotone(double_()));
  EXPECT_EQ(block_count(double_()), 1);
  EXPECT_EQ(depth(double_()), 1);
}

TEST(BasicTypes, AreInterned) {
  EXPECT_EQ(byte().get(), byte().get());
  EXPECT_EQ(double_().get(), basic(BasicId::Double).get());
}

TEST(Contiguous, DenseProperties) {
  const Type t = contiguous(10, double_());
  EXPECT_EQ(size(t), 80);
  EXPECT_EQ(extent(t), 80);
  EXPECT_TRUE(is_contiguous(t));
  EXPECT_EQ(block_count(t), 1);  // merged into one dense run
  EXPECT_EQ(depth(t), 2);
}

TEST(Contiguous, ZeroCount) {
  const Type t = contiguous(0, double_());
  EXPECT_EQ(size(t), 0);
  EXPECT_EQ(extent(t), 0);
  EXPECT_EQ(block_count(t), 0);
}

TEST(Contiguous, RejectsNegativeCount) {
  EXPECT_THROW(contiguous(-1, byte()), Error);
}

TEST(Vector, StridedProperties) {
  // 4 blocks of 2 doubles, stride 5 doubles.
  const Type t = vector(4, 2, 5, double_());
  EXPECT_EQ(size(t), 4 * 2 * 8);
  EXPECT_EQ(lb(t), 0);
  EXPECT_EQ(ub(t), (3 * 5 + 2) * 8);
  EXPECT_EQ(block_count(t), 4);
  EXPECT_FALSE(is_contiguous(t));
  EXPECT_TRUE(is_monotone(t));
  EXPECT_EQ(true_lb(t), 0);
  EXPECT_EQ(true_ub(t), (3 * 5 + 2) * 8);
}

TEST(Vector, DenseStrideCollapsesToOneBlock) {
  const Type t = vector(4, 2, 2, double_());  // stride == blocklen
  EXPECT_EQ(block_count(t), 1);
  EXPECT_TRUE(is_contiguous(t));
}

TEST(Vector, NegativeStrideIsNotMonotone) {
  const Type t = hvector(3, 1, -16, double_());
  EXPECT_FALSE(is_monotone(t));
  EXPECT_EQ(size(t), 24);
  EXPECT_EQ(true_lb(t), -32);
  EXPECT_EQ(true_ub(t), 8);
}

TEST(Vector, OverlappingStrideIsNotMonotone) {
  const Type t = hvector(3, 2, 8, double_());  // blocks overlap
  EXPECT_FALSE(is_monotone(t));
}

TEST(Hvector, PaperFigure4Shape) {
  // The noncontig filetype: blockcount blocks of blocklen bytes,
  // stride = P * blocklen, for P processes.
  const Off blockcount = 8, blocklen = 16, nprocs = 4;
  const Type v = hvector(blockcount, blocklen, nprocs * blocklen, byte());
  EXPECT_EQ(size(v), blockcount * blocklen);
  EXPECT_EQ(block_count(v), blockcount);
  EXPECT_TRUE(is_monotone(v));
  const Type ft = resized(v, 0, blockcount * nprocs * blocklen);
  EXPECT_EQ(extent(ft), blockcount * nprocs * blocklen);
  EXPECT_EQ(size(ft), size(v));
}

TEST(Indexed, ElementDisplacements) {
  const Off bls[] = {2, 1};
  const Off ds[] = {0, 4};  // elements of int (4 bytes each)
  const Type t = indexed(bls, ds, int_());
  EXPECT_EQ(size(t), 12);
  EXPECT_EQ(lb(t), 0);
  EXPECT_EQ(ub(t), 20);
  EXPECT_EQ(block_count(t), 2);  // gap between block 0 end (8) and 16
  EXPECT_TRUE(is_monotone(t));
}

TEST(Indexed, AdjacentBlocksMerge) {
  const Off bls[] = {2, 3};
  const Off ds[] = {0, 2};
  const Type t = indexed(bls, ds, int_());
  EXPECT_EQ(block_count(t), 1);
  EXPECT_TRUE(is_contiguous(t));
}

TEST(Indexed, OutOfOrderBlocksNotMonotone) {
  const Off bls[] = {1, 1};
  const Off ds[] = {5, 0};
  const Type t = indexed(bls, ds, int_());
  EXPECT_FALSE(is_monotone(t));
  EXPECT_EQ(size(t), 8);
}

TEST(IndexedBlock, EqualBlocks) {
  const Off ds[] = {0, 4, 8};  // element displacements: bytes 0, 32, 64
  const Type t = indexed_block(2, ds, double_());
  EXPECT_EQ(size(t), 6 * 8);
  EXPECT_EQ(block_count(t), 3);
  const auto list = flatten(t);
  EXPECT_EQ(list.tuples()[1].off, 32);
}

TEST(IndexedBlock, AdjacentElementBlocksMerge) {
  const Off ds[] = {0, 2, 4};  // blocks of 2 doubles back to back
  const Type t = indexed_block(2, ds, double_());
  EXPECT_EQ(block_count(t), 1);
  EXPECT_TRUE(is_contiguous(t));
}

TEST(Indexed, PrefixSums) {
  const Off bls[] = {2, 0, 3};
  const Off ds[] = {0, 100, 200};
  const Type t = hindexed(bls, ds, int_());
  ASSERT_EQ(t->prefix().size(), 4u);
  EXPECT_EQ(t->prefix()[0], 0);
  EXPECT_EQ(t->prefix()[1], 8);
  EXPECT_EQ(t->prefix()[2], 8);
  EXPECT_EQ(t->prefix()[3], 20);
  EXPECT_EQ(t->block_size(2), 12);
}

TEST(Struct, MixedChildren) {
  const Off bls[] = {1, 2};
  const Off ds[] = {0, 8};
  const Type kids[] = {int_(), double_()};
  const Type t = struct_(bls, ds, kids);
  EXPECT_EQ(size(t), 4 + 16);
  EXPECT_EQ(lb(t), 0);
  EXPECT_EQ(ub(t), 24);
  EXPECT_EQ(block_count(t), 2);
  EXPECT_TRUE(is_monotone(t));
}

TEST(Struct, SizeMismatchThrows) {
  const Off bls[] = {1};
  const Off ds[] = {0, 8};
  const Type kids[] = {int_(), double_()};
  EXPECT_THROW(struct_(bls, ds, kids), Error);
}

TEST(Resized, OverridesBounds) {
  const Type v = vector(2, 1, 4, double_());
  const Type t = resized(v, -8, 64);
  EXPECT_EQ(lb(t), -8);
  EXPECT_EQ(ub(t), 56);
  EXPECT_EQ(extent(t), 64);
  EXPECT_EQ(size(t), size(v));
  EXPECT_EQ(true_lb(t), true_lb(v));
  EXPECT_EQ(block_count(t), block_count(v));
}

TEST(Resized, ShrunkExtentBreaksContiguity) {
  const Type t = resized(contiguous(4, byte()), 0, 2);
  EXPECT_FALSE(t->is_contiguous());
  EXPECT_EQ(size(t), 4);
  EXPECT_EQ(extent(t), 2);
}

TEST(Subarray, Fortran2D) {
  // 4x3 array of ints, take the 2x2 block at (1, 1).
  const Off sizes[] = {4, 3};
  const Off subsizes[] = {2, 2};
  const Off starts[] = {1, 1};
  const Type t = subarray(sizes, subsizes, starts, Order::Fortran, int_());
  EXPECT_EQ(size(t), 16);
  EXPECT_EQ(extent(t), 4 * 3 * 4);
  EXPECT_EQ(lb(t), 0);
  EXPECT_EQ(block_count(t), 2);  // two rows of 2 ints
  EXPECT_TRUE(is_monotone(t));
  // Row y occupies ints [1+4y+1 .. 1+4y+2].
  const auto list = flatten(t);
  ASSERT_EQ(list.tuples().size(), 2u);
  EXPECT_EQ(list.tuples()[0].off, (1 * 4 + 1) * 4);
  EXPECT_EQ(list.tuples()[0].len, 8);
  EXPECT_EQ(list.tuples()[1].off, (2 * 4 + 1) * 4);
}

TEST(Subarray, COrderReversesDimensions) {
  const Off sizes[] = {3, 4};
  const Off subsizes[] = {2, 2};
  const Off starts[] = {1, 1};
  const Type c = subarray(sizes, subsizes, starts, Order::C, int_());
  const Off fsizes[] = {4, 3};
  const Off fsub[] = {2, 2};
  const Off fstarts[] = {1, 1};
  const Type f = subarray(fsizes, fsub, fstarts, Order::Fortran, int_());
  EXPECT_TRUE(equal(c, f));
}

TEST(Subarray, FullSelectionIsContiguous) {
  const Off sizes[] = {5, 4};
  const Off starts[] = {0, 0};
  const Type t = subarray(sizes, sizes, starts, Order::Fortran, double_());
  EXPECT_TRUE(is_contiguous(t));
  EXPECT_EQ(size(t), 5 * 4 * 8);
}

TEST(Subarray, BadBoundsThrow) {
  const Off sizes[] = {4};
  const Off subsizes[] = {3};
  const Off starts[] = {2};  // 2 + 3 > 4
  EXPECT_THROW(subarray(sizes, subsizes, starts, Order::C, byte()), Error);
}

TEST(Equal, DistinguishesShapes) {
  EXPECT_TRUE(equal(vector(2, 1, 3, int_()), vector(2, 1, 3, int_())));
  EXPECT_FALSE(equal(vector(2, 1, 3, int_()), vector(2, 1, 4, int_())));
  EXPECT_FALSE(equal(byte(), char_()));  // same size, different identity
  EXPECT_TRUE(equal(byte(), byte()));
}

TEST(ToString, RendersTree) {
  const std::string s = to_string(vector(2, 1, 3, int_()));
  EXPECT_NE(s.find("hvector"), std::string::npos);
  EXPECT_NE(s.find("int"), std::string::npos);
}

TEST(Depth, GrowsWithNesting) {
  Type t = byte();
  for (int i = 1; i <= 5; ++i) {
    t = contiguous(2, t);
    EXPECT_EQ(depth(t), 1 + i);
  }
}

class RandomTypeInvariants : public ::testing::TestWithParam<int> {};

TEST_P(RandomTypeInvariants, PropertiesAreConsistent) {
  testutil::Rng rng(static_cast<unsigned>(GetParam()));
  for (int i = 0; i < 50; ++i) {
    const Type t = testutil::random_type(rng, 3);
    // size equals the flatten total; block_count matches the coalesced list.
    const auto list = flatten(t, /*coalesce=*/true);
    EXPECT_EQ(size(t), list.total_bytes()) << to_string(t);
    EXPECT_EQ(block_count(t), to_off(list.block_count())) << to_string(t);
    // true bounds enclose every tuple.
    for (const OlTuple& tp : list.tuples()) {
      EXPECT_GE(tp.off, true_lb(t)) << to_string(t);
      EXPECT_LE(tp.off + tp.len, true_ub(t)) << to_string(t);
    }
    // monotone implies sorted non-overlapping tuples.
    if (is_monotone(t)) {
      for (std::size_t j = 1; j < list.tuples().size(); ++j) {
        EXPECT_LE(list.tuples()[j - 1].off + list.tuples()[j - 1].len,
                  list.tuples()[j].off)
            << to_string(t);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTypeInvariants,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace llio::dt
