// Engine equivalence: for randomized fileviews, memtypes, offsets, and
// buffer sizes, the list-based and listless engines must produce
// byte-identical file images and read-backs.  This is the strongest
// correctness statement the reproduction makes: listless I/O changes the
// mechanism, never the semantics.
#include <gtest/gtest.h>

#include "io_test_util.hpp"

namespace llio::mpiio {
namespace {

using testutil::Rng;

struct Workload {
  int nprocs;
  Off disp;
  dt::Type filetype;  // shared shape; per-rank built via maker
  Off nbytes;         // per rank
  Off offset_etypes;
  Off file_buffer;
  Off pack_buffer;
};

/// Run one collective write + independent read-back with `method` and
/// return the final image.
ByteVec run_workload(Method method, int nprocs, Off disp,
                     const std::function<dt::Type(int)>& ft_of, Off nbytes,
                     Off offset_etypes, Off fbs, Off pbs, bool collective,
                     unsigned seed,
                     iotest::Backend backend = iotest::Backend::Mem) {
  auto fs = iotest::make_backend(backend);
  sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
    Options o;
    o.method = method;
    o.file_buffer_size = fbs;
    o.pack_buffer_size = pbs;
    File f = File::open(comm, fs, o);
    f.set_view(disp, dt::byte(), ft_of(comm.rank()));
    ByteVec stream(to_size(nbytes));
    for (Off i = 0; i < nbytes; ++i)
      stream[to_size(i)] = iotest::payload_byte(
          comm.rank() + static_cast<int>(seed), i);
    if (collective) {
      f.write_at_all(offset_etypes, stream.data(), nbytes, dt::byte());
    } else {
      f.write_at(offset_etypes, stream.data(), nbytes, dt::byte());
      comm.barrier();
    }
    // Read back and verify inside the run (both engines must round-trip).
    ByteVec back(to_size(nbytes), Byte{0});
    if (collective)
      f.read_at_all(offset_etypes, back.data(), nbytes, dt::byte());
    else
      f.read_at(offset_etypes, back.data(), nbytes, dt::byte());
    EXPECT_EQ(back, stream) << method_name(method);
  });
  return iotest::backend_image(fs);
}

class Equivalence : public ::testing::TestWithParam<unsigned> {};

TEST_P(Equivalence, RandomNavigableViewsProduceIdenticalImages) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 6; ++iter) {
    const int nprocs = static_cast<int>(testutil::rnd(rng, 1, 4));
    // A shared random navigable "slot pattern": rank r uses the pattern
    // shifted by r slots so ranks do not overlap.
    const Off nblock = testutil::rnd(rng, 2, 9);
    const Off sblock = testutil::rnd(rng, 1, 24);
    const auto ft_of = [&, nblock, sblock, nprocs](int r) {
      return iotest::noncontig_filetype(nblock, sblock, nprocs, r);
    };
    const Off unit = nblock * sblock;
    const Off nbytes = testutil::rnd(rng, 1, 4) * unit +
                       testutil::rnd(rng, 0, unit - 1);
    const Off offset = testutil::rnd(rng, 0, 2 * unit);
    const Off disp = testutil::rnd(rng, 0, 64);
    const Off fbs = testutil::rnd(rng, 1, 8) * 64;
    const Off pbs = testutil::rnd(rng, 32, 256);
    const bool collective = testutil::rnd(rng, 0, 1) == 1;
    const unsigned seed = GetParam() * 100 + static_cast<unsigned>(iter);

    const ByteVec a = run_workload(Method::ListBased, nprocs, disp, ft_of,
                                   nbytes, offset, fbs, pbs, collective, seed);
    const ByteVec b = run_workload(Method::Listless, nprocs, disp, ft_of,
                                   nbytes, offset, fbs, pbs, collective, seed);
    EXPECT_EQ(a, b) << "nprocs=" << nprocs << " nblock=" << nblock
                    << " sblock=" << sblock << " nbytes=" << nbytes
                    << " offset=" << offset << " disp=" << disp
                    << " fbs=" << fbs << " collective=" << collective;
  }
}

TEST_P(Equivalence, RandomFiletypeTreesIndependent) {
  // Fully random navigable filetypes, one rank, independent access at a
  // random etype offset.
  Rng rng(GetParam() + 5000);
  for (int iter = 0; iter < 10; ++iter) {
    const dt::Type ft = testutil::random_navigable_type(rng, 3);
    const Off unit = ft->size();
    const Off nbytes = testutil::rnd(rng, 1, 3 * unit);
    const Off offset = testutil::rnd(rng, 0, 2 * unit);
    const Off disp = testutil::rnd(rng, 0, 32);
    const Off fbs = testutil::rnd(rng, 1, 6) * 32;
    const Off pbs = testutil::rnd(rng, 16, 128);
    const auto ft_of = [&](int) { return ft; };
    const unsigned seed = GetParam() * 100 + static_cast<unsigned>(iter);
    const ByteVec a = run_workload(Method::ListBased, 1, disp, ft_of, nbytes,
                                   offset, fbs, pbs, false, seed);
    const ByteVec b = run_workload(Method::Listless, 1, disp, ft_of, nbytes,
                                   offset, fbs, pbs, false, seed);
    EXPECT_EQ(a, b) << dt::to_string(ft) << " nbytes=" << nbytes
                    << " offset=" << offset << " disp=" << disp
                    << " fbs=" << fbs;
  }
}

TEST_P(Equivalence, RandomFiletypeTreesCollective) {
  // Random navigable filetype shared by all ranks; ranks access disjoint
  // instance ranges (offset = rank * instances).
  Rng rng(GetParam() + 9000);
  for (int iter = 0; iter < 5; ++iter) {
    const dt::Type ft = testutil::random_navigable_type(rng, 3);
    const Off unit = ft->size();
    const int nprocs = static_cast<int>(testutil::rnd(rng, 2, 4));
    const Off insts = testutil::rnd(rng, 1, 3);
    const Off nbytes = insts * unit;
    const Off fbs = testutil::rnd(rng, 1, 6) * 64;
    const Off pbs = testutil::rnd(rng, 32, 128);
    const unsigned seed = GetParam() * 131 + static_cast<unsigned>(iter);

    auto run = [&](Method m) {
      auto fs = pfs::MemFile::create();
      sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
        Options o;
        o.method = m;
        o.file_buffer_size = fbs;
        o.pack_buffer_size = pbs;
        File f = File::open(comm, fs, o);
        f.set_view(0, dt::byte(), ft);
        ByteVec stream(to_size(nbytes));
        for (Off i = 0; i < nbytes; ++i)
          stream[to_size(i)] =
              iotest::payload_byte(comm.rank() + static_cast<int>(seed), i);
        f.write_at_all(comm.rank() * nbytes, stream.data(), nbytes,
                       dt::byte());
        ByteVec back(to_size(nbytes), Byte{0});
        f.read_at_all(comm.rank() * nbytes, back.data(), nbytes, dt::byte());
        EXPECT_EQ(back, stream);
      });
      return fs->contents();
    };
    const ByteVec a = run(Method::ListBased);
    const ByteVec b = run(Method::Listless);
    EXPECT_EQ(a, b) << dt::to_string(ft) << " nprocs=" << nprocs;
  }
}

TEST_P(Equivalence, NcMemtypeMatchesDenseMemtype) {
  // Writing the same stream through a non-contiguous memtype must give
  // the same image as writing it densely (both engines).
  Rng rng(GetParam() + 777);
  for (Method m : {Method::ListBased, Method::Listless}) {
    const Off nblock = 6, sblock = 8;
    const Off nbytes = 2 * nblock * sblock;
    auto run = [&](bool nc) {
      auto fs = pfs::MemFile::create();
      sim::Runtime::run(2, [&](sim::Comm& comm) {
        Options o;
        o.method = m;
        o.file_buffer_size = 128;
        o.pack_buffer_size = 64;
        File f = File::open(comm, fs, o);
        f.set_view(0, dt::byte(),
                   iotest::noncontig_filetype(nblock, sblock, 2, comm.rank()));
        const ByteVec stream = iotest::payload_stream(comm.rank(), nbytes);
        if (nc) {
          auto buf = iotest::make_nc_buffer(stream);
          f.write_at_all(0, buf.storage.data(), buf.count, buf.memtype);
        } else {
          f.write_at_all(0, stream.data(), nbytes, dt::byte());
        }
      });
      return fs->contents();
    };
    EXPECT_EQ(run(false), run(true)) << method_name(m);
  }
}

TEST_P(Equivalence, CollectiveAndIndependentProduceTheSameImage) {
  // The same partitioned workload written collectively vs independently
  // (both engines, all four runs) must give one byte-identical image.
  Rng rng(GetParam() + 70000);
  for (int iter = 0; iter < 4; ++iter) {
    const int nprocs = static_cast<int>(testutil::rnd(rng, 2, 4));
    const Off nblock = testutil::rnd(rng, 3, 8);
    const Off sblock = testutil::rnd(rng, 1, 16);
    const Off unit = nblock * sblock;
    const Off nbytes = testutil::rnd(rng, 1, 3) * unit;
    const auto ft_of = [&](int r) {
      return iotest::noncontig_filetype(nblock, sblock, nprocs, r);
    };
    const unsigned seed = GetParam() + static_cast<unsigned>(iter);
    ByteVec first;
    for (Method m : {Method::ListBased, Method::Listless}) {
      for (bool coll : {false, true}) {
        const ByteVec img = run_workload(m, nprocs, 0, ft_of, nbytes, 0, 128,
                                         64, coll, seed);
        if (first.empty()) {
          first = img;
        } else {
          EXPECT_EQ(img, first)
              << method_name(m) << (coll ? " collective" : " independent")
              << " nblock=" << nblock << " sblock=" << sblock;
        }
      }
    }
  }
}

TEST_P(Equivalence, DarrayFileviewsCollective) {
  // Block-cyclic distributed-array fileviews (darray) through both
  // engines: identical images and round-trips.
  Rng rng(GetParam() + 40000);
  for (int iter = 0; iter < 4; ++iter) {
    const Off rows = testutil::rnd(rng, 4, 12);
    const Off cols = testutil::rnd(rng, 4, 12);
    const int P = static_cast<int>(testutil::rnd(rng, 2, 4));
    const Off bc = testutil::rnd(rng, 1, 3);
    auto ft_of = [&](int r) {
      const Off gs[] = {rows, cols};
      const dt::Distrib d[] = {dt::Distrib::None, dt::Distrib::Cyclic};
      const Off da[] = {dt::kDfltDarg, bc};
      const Off ps[] = {1, P};
      return dt::darray(P, r, gs, d, da, ps, dt::Order::Fortran,
                        dt::double_());
    };
    auto run = [&](Method m) {
      auto fs = pfs::MemFile::create();
      sim::Runtime::run(P, [&](sim::Comm& comm) {
        Options o;
        o.method = m;
        o.file_buffer_size = 256;
        File f = File::open(comm, fs, o);
        const dt::Type ft = ft_of(comm.rank());
        if (ft->size() == 0) {
          // Ranks owning nothing still participate with an empty access
          // through a placeholder dense view.
          f.set_view(0, dt::byte(), dt::byte());
          f.write_at_all(0, nullptr, 0, dt::byte());
          f.read_at_all(0, nullptr, 0, dt::byte());
          return;
        }
        f.set_view(0, dt::double_(), ft);
        const Off nd = ft->size() / 8;
        std::vector<double> mine(to_size(nd));
        for (Off i = 0; i < nd; ++i)
          mine[to_size(i)] = comm.rank() * 1000.0 + static_cast<double>(i);
        f.write_at_all(0, mine.data(), nd, dt::double_());
        std::vector<double> back(to_size(nd), -1.0);
        f.read_at_all(0, back.data(), nd, dt::double_());
        EXPECT_EQ(back, mine);
      });
      return fs->contents();
    };
    EXPECT_EQ(run(Method::ListBased), run(Method::Listless))
        << rows << "x" << cols << " P=" << P << " bc=" << bc;
  }
}

TEST_P(Equivalence, PsrvBackendsMatchMemFileImages) {
  // The same workloads over the file-server pool — every request class —
  // must produce the MemFile image, for both engines, collectively and
  // independently.  (The view class reroutes the whole independent path
  // through ViewIo; images may differ only in trailing zeros.)
  Rng rng(GetParam() + 60000);
  for (int iter = 0; iter < 2; ++iter) {
    const int nprocs = static_cast<int>(testutil::rnd(rng, 2, 4));
    const Off nblock = testutil::rnd(rng, 2, 6);
    const Off sblock = testutil::rnd(rng, 1, 16);
    const auto ft_of = [&, nblock, sblock, nprocs](int r) {
      return iotest::noncontig_filetype(nblock, sblock, nprocs, r);
    };
    const Off unit = nblock * sblock;
    const Off nbytes = testutil::rnd(rng, 1, 3) * unit;
    const Off offset = testutil::rnd(rng, 0, unit);
    const Off disp = testutil::rnd(rng, 0, 32);
    const Off fbs = testutil::rnd(rng, 1, 4) * 64;
    const Off pbs = testutil::rnd(rng, 32, 128);
    const bool collective = testutil::rnd(rng, 0, 1) == 1;
    const unsigned seed = GetParam() * 977 + static_cast<unsigned>(iter);
    for (Method m : {Method::ListBased, Method::Listless}) {
      ByteVec ref;
      for (iotest::Backend b : iotest::kAllBackends) {
        ByteVec img = run_workload(m, nprocs, disp, ft_of, nbytes, offset,
                                   fbs, pbs, collective, seed, b);
        if (b == iotest::Backend::Mem) {
          ref = std::move(img);
          continue;
        }
        ByteVec want = ref;
        iotest::pad_to_common(img, want);
        EXPECT_EQ(img, want)
            << method_name(m) << " over " << iotest::backend_name(b)
            << " nblock=" << nblock << " sblock=" << sblock
            << " nbytes=" << nbytes << " offset=" << offset
            << " disp=" << disp << " collective=" << collective;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace llio::mpiio
