// Failure injection: storage faults must surface as Errc::Io through the
// engine stack, and a faulted rank must abort — not deadlock — collective
// peers.
#include <gtest/gtest.h>

#include "io_test_util.hpp"
#include "pfs/faulty_file.hpp"

namespace llio::mpiio {
namespace {

TEST(Fault, TriggersOnNthOperation) {
  pfs::FaultPlan plan;
  plan.fail_after_writes = 2;  // third write fails
  auto f = pfs::FaultyFile::wrap(pfs::MemFile::create(), plan);
  const ByteVec d(8, Byte{1});
  f->pwrite(0, d);
  f->pwrite(8, d);
  try {
    f->pwrite(16, d);
    FAIL() << "expected injected fault";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::Io);
  }
  // Subsequent operations succeed (one-shot fault).
  f->pwrite(16, d);
  EXPECT_EQ(f->size(), 24);
}

TEST(Fault, DisarmCancelsPendingFaults) {
  pfs::FaultPlan plan;
  plan.fail_after_reads = 0;
  auto f = pfs::FaultyFile::wrap(pfs::MemFile::create(16), plan);
  f->disarm();
  ByteVec out(8);
  EXPECT_EQ(f->pread(0, out), 8);
}

class FaultEngines : public ::testing::TestWithParam<Method> {};

TEST_P(FaultEngines, IndependentWriteSurfacesIoError) {
  pfs::FaultPlan plan;
  plan.fail_after_writes = 0;
  auto fs = pfs::FaultyFile::wrap(pfs::MemFile::create(), plan);
  bool caught = false;
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(), iotest::noncontig_filetype(4, 8, 2, 0));
    const ByteVec stream = iotest::payload_stream(0, 32);
    try {
      f.write_at(0, stream.data(), 32, dt::byte());
    } catch (const Error& e) {
      caught = e.code() == Errc::Io;
    }
  });
  EXPECT_TRUE(caught);
}

TEST_P(FaultEngines, CollectiveWithFaultedIopAbortsAllRanks) {
  // The failing IOP throws mid-collective; peers blocked in the exchange
  // must be released with an error instead of deadlocking.
  pfs::FaultPlan plan;
  plan.fail_after_writes = 0;
  auto fs = pfs::FaultyFile::wrap(pfs::MemFile::create(), plan);
  EXPECT_THROW(
      sim::Runtime::run(4, [&](sim::Comm& comm) {
        Options o;
        o.method = GetParam();
        o.file_buffer_size = 64;
        File f = File::open(comm, fs, o);
        f.set_view(0, dt::byte(),
                   iotest::noncontig_filetype(8, 8, 4, comm.rank()));
        const ByteVec stream = iotest::payload_stream(comm.rank(), 128);
        f.write_at_all(0, stream.data(), 128, dt::byte());
        // If the write somehow succeeded on this rank, force collective
        // progress so everyone observes the abort.
        comm.barrier();
      }),
      Error);
}

TEST_P(FaultEngines, ReadFaultDuringSievingSurfaces) {
  pfs::FaultPlan plan;
  plan.fail_after_reads = 0;
  auto inner = pfs::MemFile::create();
  inner->resize(1024);
  auto fs = pfs::FaultyFile::wrap(inner, plan);
  bool caught = false;
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(), iotest::noncontig_filetype(4, 8, 2, 0));
    ByteVec out(32);
    try {
      f.read_at(0, out.data(), 32, dt::byte());
    } catch (const Error& e) {
      caught = e.code() == Errc::Io;
    }
  });
  EXPECT_TRUE(caught);
}

TEST_P(FaultEngines, PipelinedWriteFaultSurfacesExactError) {
  // The injected pwrite fault fires inside the pipeline's I/O worker
  // thread; it must propagate to the caller as the same Errc::Io the
  // serial path raises — no hang, no silently dropped window.
  pfs::FaultPlan plan;
  plan.fail_after_writes = 1;  // second window write fails, mid-pipeline
  auto fs = pfs::FaultyFile::wrap(pfs::MemFile::create(), plan);
  bool caught = false;
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    o.file_buffer_size = 32;  // many windows, all in flight at depth 2
    o.pipeline_depth = 2;
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(), iotest::noncontig_filetype(32, 8, 2, 0));
    const ByteVec stream = iotest::payload_stream(0, 256);
    try {
      f.write_at_all(0, stream.data(), 256, dt::byte());
    } catch (const Error& e) {
      caught = e.code() == Errc::Io;
    }
  });
  EXPECT_TRUE(caught);
}

TEST_P(FaultEngines, PipelinedCollectiveFaultAbortsAllRanks) {
  // Multi-rank variant: a worker-thread fault on one IOP must abort the
  // whole collective instead of deadlocking peers in the exchange.
  pfs::FaultPlan plan;
  plan.fail_after_writes = 1;
  auto fs = pfs::FaultyFile::wrap(pfs::MemFile::create(), plan);
  EXPECT_THROW(
      sim::Runtime::run(4, [&](sim::Comm& comm) {
        Options o;
        o.method = GetParam();
        o.file_buffer_size = 32;
        o.pipeline_depth = 2;
        File f = File::open(comm, fs, o);
        f.set_view(0, dt::byte(),
                   iotest::noncontig_filetype(16, 8, 4, comm.rank()));
        const ByteVec stream = iotest::payload_stream(comm.rank(), 256);
        f.write_at_all(0, stream.data(), 256, dt::byte());
        comm.barrier();
      }),
      Error);
}

INSTANTIATE_TEST_SUITE_P(BothMethods, FaultEngines,
                         ::testing::Values(Method::ListBased,
                                           Method::Listless),
                         [](const ::testing::TestParamInfo<Method>& pinfo) {
                           return pinfo.param == Method::ListBased
                                      ? "list_based"
                                      : "listless";
                         });

}  // namespace
}  // namespace llio::mpiio
