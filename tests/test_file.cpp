// File front-end behaviour: open, default view, views, move semantics,
// engine dispatch, PosixFile end-to-end.
#include <gtest/gtest.h>

#include <cstdio>

#include "common/timer.hpp"

#include "io_test_util.hpp"
#include "pfs/posix_file.hpp"
#include "pfs/throttled_file.hpp"

namespace llio::mpiio {
namespace {

// Wall-clock assertions cannot hold under sanitizer slowdowns.
#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
constexpr bool kSanitized = true;
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
constexpr bool kSanitized = true;
#else
constexpr bool kSanitized = false;
#endif
#else
constexpr bool kSanitized = false;
#endif

TEST(FileApi, DefaultViewIsWholeFileBytes) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    EXPECT_EQ(f.view().disp, 0);
    EXPECT_TRUE(f.view().dense());
    const char msg[] = "hello llio";
    f.write_at(0, msg, sizeof(msg), dt::byte());
    char back[sizeof(msg)] = {};
    f.read_at(0, back, sizeof(msg), dt::byte());
    EXPECT_STREQ(back, msg);
  });
  EXPECT_EQ(fs->size(), 11);
}

TEST(FileApi, OpenRequiresBackend) {
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    EXPECT_THROW(File::open(comm, nullptr), Error);
  });
}

TEST(FileApi, SetViewResetsPointer) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    const int v[4] = {1, 2, 3, 4};
    f.write(v, 4, dt::int_());
    EXPECT_EQ(f.tell(), 16);  // etype is byte
    f.set_view(0, dt::int_(), dt::contiguous(4, dt::int_()));
    EXPECT_EQ(f.tell(), 0);
  });
}

TEST(FileApi, ViewDispOffsetsWholeAccess) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.set_view(100, dt::byte(), dt::byte());
    const char c = 'x';
    f.write_at(0, &c, 1, dt::byte());
  });
  ASSERT_EQ(fs->size(), 101);
  EXPECT_EQ(fs->contents()[100], Byte{'x'});
}

TEST(FileApi, MoveSemantics) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    File g = std::move(f);
    const char c = 'm';
    g.write_at(0, &c, 1, dt::byte());
    EXPECT_EQ(g.size(), 1);
  });
}

TEST(FileApi, SeekEndUsesFileSize) {
  auto fs = pfs::MemFile::create(64);
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.set_view(0, dt::long_(), dt::long_());
    f.seek(0, File::Whence::End);
    EXPECT_EQ(f.tell(), 8);  // 64 bytes / 8-byte etype
    f.seek(-2, File::Whence::Cur);
    EXPECT_EQ(f.tell(), 6);
  });
}

TEST(FileApi, LastStatsReflectsMostRecentOp) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    ByteVec buf(100, Byte{1});
    f.write_at(0, buf.data(), 100, dt::byte());
    EXPECT_EQ(f.last_stats().bytes_moved, 100);
    f.read_at(0, buf.data(), 40, dt::byte());
    EXPECT_EQ(f.last_stats().bytes_moved, 40);
  });
}

TEST(FileApi, TwoFilesIndependentLocks) {
  auto a = pfs::MemFile::create();
  auto b = pfs::MemFile::create();
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    File fa = File::open(comm, a);
    File fb = File::open(comm, b);
    const ByteVec data = iotest::payload_stream(comm.rank(), 64);
    fa.write_at(comm.rank() * 64, data.data(), 64, dt::byte());
    fb.write_at((1 - comm.rank()) * 64, data.data(), 64, dt::byte());
  });
  EXPECT_EQ(a->size(), 128);
  EXPECT_EQ(b->size(), 128);
}

TEST(FileApi, InterleavedCollectivesOnTwoFiles) {
  // Two handles on one comm, collectives alternating between them in the
  // same order on every rank (as MPI requires): the message matching must
  // keep the operations separate.
  auto a = pfs::MemFile::create();
  auto b = pfs::MemFile::create();
  sim::Runtime::run(3, [&](sim::Comm& comm) {
    File fa = File::open(comm, a);
    File fb = File::open(comm, b, Options{.method = Method::ListBased});
    fa.set_view(0, dt::byte(), iotest::noncontig_filetype(4, 8, 3, comm.rank()));
    fb.set_view(0, dt::byte(), iotest::noncontig_filetype(2, 16, 3, comm.rank()));
    for (int round = 0; round < 4; ++round) {
      const ByteVec da = iotest::payload_stream(comm.rank() + round, 32);
      const ByteVec db = iotest::payload_stream(comm.rank() + 100 + round, 32);
      fa.write_at_all(round * 32, da.data(), 32, dt::byte());
      fb.write_at_all(round * 32, db.data(), 32, dt::byte());
      ByteVec ra(32), rb(32);
      fb.read_at_all(round * 32, rb.data(), 32, dt::byte());
      fa.read_at_all(round * 32, ra.data(), 32, dt::byte());
      EXPECT_EQ(ra, da) << "round " << round;
      EXPECT_EQ(rb, db) << "round " << round;
    }
  });
}

TEST(FileApi, SetSizePreallocateSync) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.set_size(1000);
    EXPECT_EQ(f.size(), 1000);
    f.preallocate(500);  // never shrinks
    EXPECT_EQ(f.size(), 1000);
    f.preallocate(2000);
    EXPECT_EQ(f.size(), 2000);
    f.set_size(100);  // truncates
    EXPECT_EQ(f.size(), 100);
    f.sync();
    EXPECT_THROW(f.set_size(-1), Error);
  });
}

TEST(FileApi, NonblockingIndependentIo) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.set_view(0, dt::byte(), iotest::noncontig_filetype(8, 8, 2, comm.rank()));
    const ByteVec data = iotest::payload_stream(comm.rank(), 64);
    Request w = f.iwrite_at(0, data.data(), 64, dt::byte());
    EXPECT_TRUE(w.valid());
    EXPECT_EQ(w.wait(), 64);
    EXPECT_FALSE(w.valid());        // consumed
    EXPECT_THROW(w.wait(), Error);  // double wait rejected

    ByteVec back(64, Byte{0});
    Request r = f.iread_at(0, back.data(), 64, dt::byte());
    EXPECT_EQ(r.wait(), 64);
    EXPECT_EQ(back, data);
  });
}

TEST(FileApi, NonblockingOverlapsWithCallerWork) {
  // With a slow backend, the async write proceeds while the caller is
  // busy: total wall time is well under write-time + busy-time.
  if (kSanitized) GTEST_SKIP() << "timing assertion, skipped under sanitizers";
  pfs::ThrottleConfig cfg;
  cfg.write_bandwidth_bps = 100e6;  // 4 MiB -> ~42 ms
  auto fs = pfs::ThrottledFile::wrap(pfs::MemFile::create(), cfg);
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    ByteVec data(4 << 20, Byte{1});
    llio::WallTimer t;
    Request w = f.iwrite_at(0, data.data(), to_off(data.size()), dt::byte());
    llio::WallTimer busy;
    while (busy.seconds() < 0.04) {
    }
    EXPECT_EQ(w.wait(), to_off(data.size()));
    EXPECT_LT(t.seconds(), 0.04 + 0.042);  // overlapped, not serialized
  });
}

TEST(FileApi, MixedSyncAndAsyncOpsSerialize) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    ByteVec a(1024, Byte{0xA1});
    ByteVec b(1024, Byte{0xB2});
    // Async write to [0,1024) racing a sync write to [512, 1536): both
    // complete, every byte comes from one of them, and the overlap region
    // is entirely one writer's (engine ops serialize).
    Request w = f.iwrite_at(0, a.data(), 1024, dt::byte());
    f.write_at(512, b.data(), 1024, dt::byte());
    w.wait();
    const ByteVec img = fs->contents();
    ASSERT_EQ(img.size(), 1536u);
    for (std::size_t i = 0; i < 512; ++i) EXPECT_EQ(img[i], Byte{0xA1});
    for (std::size_t i = 1024; i < 1536; ++i) EXPECT_EQ(img[i], Byte{0xB2});
    const Byte mid = img[512];
    EXPECT_TRUE(mid == Byte{0xA1} || mid == Byte{0xB2});
    for (std::size_t i = 512; i < 1024; ++i) EXPECT_EQ(img[i], mid);
  });
}

TEST(FileApi, PosixBackendEndToEnd) {
  const std::string path = ::testing::TempDir() + "/llio_file_e2e.bin";
  const int P = 2;
  const Off nblock = 6, sblock = 8;
  const Off nbytes = 2 * nblock * sblock;
  {
    auto fs = pfs::PosixFile::open(path, /*truncate=*/true);
    sim::Runtime::run(P, [&](sim::Comm& comm) {
      Options o;
      o.method = Method::Listless;
      o.file_buffer_size = 128;
      File f = File::open(comm, fs, o);
      f.set_view(0, dt::byte(),
                 iotest::noncontig_filetype(nblock, sblock, P, comm.rank()));
      const ByteVec stream = iotest::payload_stream(comm.rank(), nbytes);
      f.write_at_all(0, stream.data(), nbytes, dt::byte());
    });
  }
  // Re-open and verify with the other engine.
  {
    auto fs = pfs::PosixFile::open(path);
    sim::Runtime::run(P, [&](sim::Comm& comm) {
      Options o;
      o.method = Method::ListBased;
      File f = File::open(comm, fs, o);
      f.set_view(0, dt::byte(),
                 iotest::noncontig_filetype(nblock, sblock, P, comm.rank()));
      ByteVec back(to_size(nbytes), Byte{0});
      f.read_at_all(0, back.data(), nbytes, dt::byte());
      EXPECT_EQ(back, iotest::payload_stream(comm.rank(), nbytes));
    });
  }
  std::remove(path.c_str());
}

TEST(FileApi, ThrottledBackendWorks) {
  auto inner = pfs::MemFile::create();
  pfs::ThrottleConfig cfg;
  cfg.read_bandwidth_bps = 500e6;
  cfg.write_bandwidth_bps = 500e6;
  auto fs = pfs::ThrottledFile::wrap(inner, cfg);
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.set_view(0, dt::byte(), iotest::noncontig_filetype(4, 8, 2, comm.rank()));
    const ByteVec stream = iotest::payload_stream(comm.rank(), 64);
    f.write_at_all(0, stream.data(), 64, dt::byte());
    ByteVec back(64, Byte{0});
    f.read_at_all(0, back.data(), 64, dt::byte());
    EXPECT_EQ(back, stream);
  });
  EXPECT_GT(fs->simulated_time(), 0.0);
}

}  // namespace
}  // namespace llio::mpiio
