#include <gtest/gtest.h>

#include "dtype/flatten.hpp"
#include "test_util.hpp"

namespace llio::dt {
namespace {

TEST(Flatten, BasicTypeIsOneTuple) {
  const auto list = flatten(double_());
  ASSERT_EQ(list.tuples().size(), 1u);
  EXPECT_EQ(list.tuples()[0].off, 0);
  EXPECT_EQ(list.tuples()[0].len, 8);
  EXPECT_EQ(list.total_bytes(), 8);
}

TEST(Flatten, VectorEmitsOneTuplePerBlock) {
  const Type t = hvector(4, 3, 10, byte());
  const auto list = flatten(t);
  ASSERT_EQ(list.tuples().size(), 4u);
  for (Off i = 0; i < 4; ++i) {
    EXPECT_EQ(list.tuples()[to_size(i)].off, i * 10);
    EXPECT_EQ(list.tuples()[to_size(i)].len, 3);
  }
}

TEST(Flatten, CoalescesAdjacentBlocks) {
  const Off bls[] = {4, 4};
  const Off ds[] = {0, 4};
  const Type t = hindexed(bls, ds, byte());
  EXPECT_EQ(flatten(t, true).tuples().size(), 1u);
  EXPECT_EQ(flatten(t, false).tuples().size(), 2u);
}

TEST(Flatten, MemoryIs16BytesPerTuple) {
  // The paper's §2.4 memory cost: N_block * (sizeof(Aint)+sizeof(Offset)).
  static_assert(sizeof(OlTuple) == 16);
  const Type t = hvector(1000, 1, 16, double_());
  const auto list = flatten(t);
  EXPECT_EQ(list.memory_bytes(), 16000);
}

TEST(Flatten, ListRepresentationDwarfsSmallPayloads) {
  // For blocks under 16 bytes the ol-list is bigger than the data itself
  // (the paper's §2.1 extreme example).
  const Type t = hvector(512, 1, 16, double_());  // 8-byte blocks
  const auto list = flatten(t);
  EXPECT_GT(list.memory_bytes(), list.total_bytes());
}

TEST(Flatten, NestedVectorOfVector) {
  // 2 outer blocks; inner = 2 blocks of 1 byte stride 3 (bytes 0 and 3).
  const Type inner = hvector(2, 1, 3, byte());
  const Type outer = hvector(2, 1, 10, resized(inner, 0, 4));
  const auto list = flatten(outer);
  ASSERT_EQ(list.tuples().size(), 4u);
  EXPECT_EQ(list.tuples()[0].off, 0);
  EXPECT_EQ(list.tuples()[1].off, 3);
  EXPECT_EQ(list.tuples()[2].off, 10);
  EXPECT_EQ(list.tuples()[3].off, 13);
}

TEST(Flatten, StructPreservesTypemapOrder) {
  const Off bls[] = {1, 1};
  const Off ds[] = {8, 0};  // second child placed before the first
  const Type kids[] = {int_(), int_()};
  const Type t = struct_(bls, ds, kids);
  const auto list = flatten(t);
  ASSERT_EQ(list.tuples().size(), 2u);
  EXPECT_EQ(list.tuples()[0].off, 8);  // typemap order, not offset order
  EXPECT_EQ(list.tuples()[1].off, 0);
}

TEST(Flatten, ZeroSizeTypeGivesEmptyList) {
  const auto list = flatten(contiguous(0, byte()));
  EXPECT_TRUE(list.empty());
  EXPECT_EQ(list.total_bytes(), 0);
}

TEST(Flatten, TotalBytesAlwaysMatchesTypeSize) {
  testutil::Rng rng(99);
  for (int i = 0; i < 100; ++i) {
    const Type t = testutil::random_type(rng, 3);
    EXPECT_EQ(flatten(t, true).total_bytes(), t->size());
    EXPECT_EQ(flatten(t, false).total_bytes(), t->size());
  }
}

TEST(Flatten, CoalescedNeverLongerThanRaw) {
  testutil::Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const Type t = testutil::random_type(rng, 3);
    EXPECT_LE(flatten(t, true).block_count(), flatten(t, false).block_count());
  }
}

}  // namespace
}  // namespace llio::dt
