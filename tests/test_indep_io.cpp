// Independent read/write through both engines, all four layout combos of
// the paper's Figure 1 (c-c, nc-c, c-nc, nc-nc), with small buffers so
// the sieving loop runs many windows.
#include <gtest/gtest.h>

#include "io_test_util.hpp"
#include "listio/list_engine.hpp"

namespace llio::mpiio {
namespace {

using iotest::make_nc_buffer;
using iotest::noncontig_filetype;
using iotest::payload_stream;

Options small_buffers(Method m) {
  Options o;
  o.method = m;
  o.file_buffer_size = 256;  // force many sieving windows
  o.pack_buffer_size = 96;   // force pack chunking
  return o;
}

struct Combo {
  Method method;
  bool nc_mem;
  bool nc_file;

  friend std::ostream& operator<<(std::ostream& os, const Combo& c) {
    return os << method_name(c.method) << (c.nc_mem ? "_ncmem" : "_cmem")
              << (c.nc_file ? "_ncfile" : "_cfile");
  }
};

class IndepIo : public ::testing::TestWithParam<Combo> {};

TEST_P(IndepIo, WriteThenReadBack) {
  const Combo combo = GetParam();
  const int P = 2;
  const Off nblock = 13, sblock = 8;
  const Off nbytes = 4 * nblock * sblock;  // four filetype instances
  auto fs = pfs::MemFile::create();

  sim::Runtime::run(P, [&](sim::Comm& comm) {
    File f = File::open(comm, fs, small_buffers(combo.method));
    if (combo.nc_file) {
      f.set_view(0, dt::byte(),
                 noncontig_filetype(nblock, sblock, P, comm.rank()));
    } else {
      // Contiguous partition: rank r owns [r*nbytes, (r+1)*nbytes).
      f.set_view(comm.rank() * nbytes, dt::byte(), dt::byte());
    }
    const ByteVec stream = payload_stream(comm.rank(), nbytes);
    if (combo.nc_mem) {
      auto buf = make_nc_buffer(stream);
      EXPECT_EQ(f.write_at(0, buf.storage.data(), buf.count, buf.memtype),
                nbytes);
    } else {
      EXPECT_EQ(f.write_at(0, stream.data(), nbytes, dt::byte()), nbytes);
    }
    comm.barrier();

    // Read back with the opposite memory layout to cross the combos.
    if (combo.nc_mem) {
      ByteVec back(to_size(nbytes), Byte{0});
      EXPECT_EQ(f.read_at(0, back.data(), nbytes, dt::byte()), nbytes);
      EXPECT_EQ(back, stream);
    } else {
      auto buf = make_nc_buffer(ByteVec(to_size(nbytes), Byte{0}));
      EXPECT_EQ(f.read_at(0, buf.storage.data(), buf.count, buf.memtype),
                nbytes);
      EXPECT_EQ(nc_buffer_stream(buf), stream);
    }
  });

  // Verify the final file image byte for byte.
  if (combo.nc_file) {
    const ByteVec want = iotest::expected_image(
        P, [&](int r) { return noncontig_filetype(nblock, sblock, P, r); }, 0,
        0, nbytes);
    ByteVec got = fs->contents();
    got.resize(want.size(), Byte{0});
    EXPECT_EQ(got, want);
  } else {
    const ByteVec got = fs->contents();
    ASSERT_EQ(to_off(got.size()), P * nbytes);
    for (int r = 0; r < P; ++r) {
      const ByteVec want = payload_stream(r, nbytes);
      EXPECT_TRUE(std::equal(want.begin(), want.end(),
                             got.begin() +
                                 static_cast<std::ptrdiff_t>(Off{r} * nbytes)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, IndepIo,
    ::testing::Values(Combo{Method::ListBased, false, false},
                      Combo{Method::ListBased, true, false},
                      Combo{Method::ListBased, false, true},
                      Combo{Method::ListBased, true, true},
                      Combo{Method::Listless, false, false},
                      Combo{Method::Listless, true, false},
                      Combo{Method::Listless, false, true},
                      Combo{Method::Listless, true, true}),
    [](const ::testing::TestParamInfo<Combo>& pinfo) {
      std::ostringstream os;
      os << pinfo.param;
      std::string s = os.str();
      for (char& c : s)
        if (c == '-') c = '_';
      return s;
    });

class IndepOffsets : public ::testing::TestWithParam<Method> {};

TEST_P(IndepOffsets, EtypeGranularOffsetsInsideFiletype) {
  // Accesses may start anywhere at etype granularity, including inside a
  // filetype instance (paper §2.2 / §3.2.1).
  const Off nblock = 5, sblock = 8;
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o = small_buffers(GetParam());
    File f = File::open(comm, fs, o);
    // A 2-process-shaped fileview used by one rank: gaps stay in the file.
    f.set_view(16, dt::double_(), noncontig_filetype(nblock, sblock, 2, 0));

    // Write doubles 3..12 of the view (starts mid-instance).
    std::vector<double> vals;
    for (int i = 0; i < 10; ++i) vals.push_back(100.0 + i);
    EXPECT_EQ(f.write_at(3, vals.data(), 10, dt::double_()), 80);

    std::vector<double> back(10, 0.0);
    EXPECT_EQ(f.read_at(3, back.data(), 10, dt::double_()), 80);
    EXPECT_EQ(back, vals);

    // Reading a shifted range sees the overlap.
    std::vector<double> shifted(10, 0.0);
    EXPECT_EQ(f.read_at(5, shifted.data(), 10, dt::double_()), 80);
    for (int i = 0; i < 8; ++i) EXPECT_EQ(shifted[to_size(Off{i})], vals[to_size(Off{i + 2})]);
    for (int i = 8; i < 10; ++i) EXPECT_EQ(shifted[to_size(Off{i})], 0.0);
  });
}

TEST_P(IndepOffsets, FilePointerReadWriteSeek) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o = small_buffers(GetParam());
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::int_(), noncontig_filetype(4, 8, 1, 0));
    EXPECT_EQ(f.tell(), 0);
    const int a[4] = {1, 2, 3, 4};
    EXPECT_EQ(f.write(a, 4, dt::int_()), 16);
    EXPECT_EQ(f.tell(), 4);
    f.seek(-2, File::Whence::Cur);
    EXPECT_EQ(f.tell(), 2);
    int b[2] = {0, 0};
    EXPECT_EQ(f.read(b, 2, dt::int_()), 8);
    EXPECT_EQ(b[0], 3);
    EXPECT_EQ(b[1], 4);
    f.seek(0, File::Whence::Set);
    EXPECT_EQ(f.tell(), 0);
    EXPECT_THROW(f.seek(-1, File::Whence::Set), Error);
  });
}

TEST_P(IndepOffsets, ReadBeyondWrittenDataIsZero) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs, small_buffers(GetParam()));
    f.set_view(0, dt::byte(), noncontig_filetype(4, 8, 1, 0));
    ByteVec out(64, Byte{0x55});
    EXPECT_EQ(f.read_at(0, out.data(), 64, dt::byte()), 64);
    for (Byte b : out) EXPECT_EQ(b, Byte{0});
  });
}

TEST_P(IndepOffsets, RejectsBadArguments) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs, small_buffers(GetParam()));
    ByteVec buf(8);
    EXPECT_THROW(f.write_at(-1, buf.data(), 8, dt::byte()), Error);
    EXPECT_THROW(f.write_at(0, buf.data(), -1, dt::byte()), Error);
    EXPECT_THROW(f.write_at(0, nullptr, 8, dt::byte()), Error);
    EXPECT_EQ(f.write_at(0, nullptr, 0, dt::byte()), 0);  // empty is legal
    // Non-navigable filetype rejected at set_view.
    const Off bls[] = {1, 1};
    const Off ds[] = {8, 0};
    EXPECT_THROW(f.set_view(0, dt::byte(), dt::hindexed(bls, ds, dt::byte())),
                 Error);
    // etype that does not divide the filetype.
    EXPECT_THROW(
        f.set_view(0, dt::double_(), dt::contiguous(12, dt::byte())),
        Error);
  });
}

INSTANTIATE_TEST_SUITE_P(BothMethods, IndepOffsets,
                         ::testing::Values(Method::ListBased,
                                           Method::Listless),
                         [](const ::testing::TestParamInfo<Method>& pinfo) {
                           return pinfo.param == Method::ListBased
                                      ? "list_based"
                                      : "listless";
                         });

TEST(IndepIoStats, SieveCountsFileTraffic) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o = small_buffers(Method::Listless);
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(), noncontig_filetype(8, 8, 2, 0));
    const ByteVec stream = payload_stream(0, 128);
    f.write_at(0, stream.data(), 128, dt::byte());
    const IoOpStats& st = f.last_stats();
    EXPECT_EQ(st.bytes_moved, 128);
    // Sieving writes whole windows: more file bytes than payload.
    EXPECT_GT(st.file_write_bytes, 128);
    EXPECT_GT(st.total_s, 0.0);
  });
}

TEST(IndepIoStats, ListEngineChargesFlattenCosts) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o = small_buffers(Method::ListBased);
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(), noncontig_filetype(1000, 8, 2, 0));
    auto& eng = dynamic_cast<listio::ListEngine&>(f.engine());
    EXPECT_EQ(eng.view_list_bytes(), 16000);  // 16 B per tuple (paper §2.4)
    // A write with an nc memtype flattens the memtype per access.
    const ByteVec stream = payload_stream(0, 512);
    auto buf = iotest::make_nc_buffer(stream);
    f.write_at(0, buf.storage.data(), buf.count, buf.memtype);
    EXPECT_GT(f.last_stats().list_mem_bytes, 0);
  });
}

}  // namespace
}  // namespace llio::mpiio
