#include <gtest/gtest.h>

#include "io_test_util.hpp"
#include "mpiio/info.hpp"

namespace llio::mpiio {
namespace {

TEST(Info, SetGetErase) {
  Info info;
  EXPECT_FALSE(info.get("k").has_value());
  info.set("k", "v");
  EXPECT_EQ(info.get("k").value(), "v");
  info.set("k", "w");
  EXPECT_EQ(info.get("k").value(), "w");
  EXPECT_TRUE(info.erase("k"));
  EXPECT_FALSE(info.erase("k"));
}

TEST(ApplyInfo, MethodSelection) {
  EXPECT_EQ(apply_info(Info{{"llio_method", "list-based"}}, {}).method,
            Method::ListBased);
  EXPECT_EQ(apply_info(Info{{"llio_method", "listless"}}, {}).method,
            Method::Listless);
  EXPECT_THROW(apply_info(Info{{"llio_method", "romio"}}, {}), Error);
}

TEST(ApplyInfo, BufferSizes) {
  const Options o = apply_info(
      Info{{"cb_buffer_size", "65536"}, {"pack_buffer_size", "4096"}}, {});
  EXPECT_EQ(o.file_buffer_size, 65536);
  EXPECT_EQ(o.pack_buffer_size, 4096);
  EXPECT_EQ(apply_info(Info{{"ind_rd_buffer_size", "1234"}}, {})
                .file_buffer_size,
            1234);
  EXPECT_THROW(apply_info(Info{{"cb_buffer_size", "0"}}, {}), Error);
  EXPECT_THROW(apply_info(Info{{"cb_buffer_size", "lots"}}, {}), Error);
}

TEST(ApplyInfo, CollectiveBufferingToggles) {
  Options o = apply_info(Info{{"romio_cb_write", "disable"}}, {});
  EXPECT_FALSE(o.cb_write);
  EXPECT_TRUE(o.cb_read);
  o = apply_info(Info{{"romio_cb_read", "disable"}}, {});
  EXPECT_FALSE(o.cb_read);
  o = apply_info(Info{{"romio_cb_write", "automatic"}}, {});
  EXPECT_TRUE(o.cb_write);
  EXPECT_THROW(apply_info(Info{{"romio_cb_write", "maybe"}}, {}), Error);
}

TEST(ApplyInfo, DataSievingStrategies) {
  Options o = apply_info(Info{{"romio_ds_write", "disable"},
                              {"romio_ds_read", "automatic"},
                              {"llio_sieve_min_fill", "0.5"}},
                         {});
  EXPECT_EQ(o.ds_write, Sieving::Never);
  EXPECT_EQ(o.ds_read, Sieving::Automatic);
  EXPECT_DOUBLE_EQ(o.sieve_min_fill, 0.5);
  EXPECT_THROW(apply_info(Info{{"llio_sieve_min_fill", "1.5"}}, {}), Error);
  EXPECT_THROW(apply_info(Info{{"romio_ds_write", "x"}}, {}), Error);
}

TEST(ApplyInfo, CbNodesAndMergeOpt) {
  // llio_merge_opt is the deprecated alias of llio_merge_contig.
  Options o = apply_info(
      Info{{"cb_nodes", "2"}, {"llio_merge_opt", "disable"}}, {});
  EXPECT_EQ(o.io_procs, 2);
  EXPECT_EQ(o.merge_contig, MergeContig::Off);
  o = apply_info(Info{{"llio_merge_opt", "enable"}}, {});
  EXPECT_EQ(o.merge_contig, MergeContig::Auto);
}

TEST(ApplyInfo, MergeContigModes) {
  EXPECT_EQ(apply_info(Info{{"llio_merge_contig", "off"}}, {}).merge_contig,
            MergeContig::Off);
  EXPECT_EQ(apply_info(Info{{"llio_merge_contig", "auto"}}, {}).merge_contig,
            MergeContig::Auto);
  EXPECT_EQ(apply_info(Info{{"llio_merge_contig", "force"}}, {}).merge_contig,
            MergeContig::Force);
  EXPECT_THROW(apply_info(Info{{"llio_merge_contig", "on"}}, {}), Error);
}

TEST(ApplyInfo, UnknownKeysIgnored) {
  EXPECT_NO_THROW(apply_info(Info{{"some_vendor_hint", "whatever"}}, {}));
}

TEST(ApplyInfo, RoundTripThroughOptionsToInfo) {
  Options o;
  o.method = Method::ListBased;
  o.file_buffer_size = 12345;
  o.io_procs = 3;
  o.cb_write = false;
  o.ds_read = Sieving::Automatic;
  o.merge_contig = MergeContig::Force;
  const Options back = apply_info(options_to_info(o), Options{});
  EXPECT_EQ(back.method, o.method);
  EXPECT_EQ(back.file_buffer_size, o.file_buffer_size);
  EXPECT_EQ(back.io_procs, o.io_procs);
  EXPECT_EQ(back.cb_write, o.cb_write);
  EXPECT_EQ(back.ds_read, o.ds_read);
  EXPECT_EQ(back.merge_contig, o.merge_contig);
}

TEST(FileWithInfo, OpensAndReports) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    File f = File::open(comm, fs,
                        Info{{"llio_method", "list-based"},
                             {"cb_buffer_size", "8192"}});
    EXPECT_EQ(f.options().method, Method::ListBased);
    EXPECT_EQ(f.options().file_buffer_size, 8192);
    EXPECT_EQ(f.info().get("llio_method").value(), "list-based");
    // It still works end to end.
    f.set_view(0, dt::byte(),
               iotest::noncontig_filetype(4, 8, 2, comm.rank()));
    const ByteVec stream = iotest::payload_stream(comm.rank(), 64);
    EXPECT_EQ(f.write_at_all(0, stream.data(), 64, dt::byte()), 64);
  });
}

TEST(FileWithInfo, CbWriteDisableStillCorrect) {
  // With collective buffering disabled the collective degrades to
  // independent sieving accesses — the image must be identical.
  const Off nblock = 6, sblock = 8;
  const Off nbytes = 2 * nblock * sblock;
  auto run = [&](const char* cb) {
    auto fs = pfs::MemFile::create();
    sim::Runtime::run(3, [&](sim::Comm& comm) {
      File f = File::open(comm, fs, Info{{"romio_cb_write", cb},
                                         {"romio_cb_read", cb},
                                         {"cb_buffer_size", "128"}});
      f.set_view(0, dt::byte(),
                 iotest::noncontig_filetype(nblock, sblock, 3, comm.rank()));
      const ByteVec stream = iotest::payload_stream(comm.rank(), nbytes);
      EXPECT_EQ(f.write_at_all(0, stream.data(), nbytes, dt::byte()), nbytes);
      ByteVec back(to_size(nbytes), Byte{0});
      EXPECT_EQ(f.read_at_all(0, back.data(), nbytes, dt::byte()), nbytes);
      EXPECT_EQ(back, stream);
    });
    return fs->contents();
  };
  ByteVec with = run("enable");
  ByteVec without = run("disable");
  with.resize(std::max(with.size(), without.size()), Byte{0});
  without.resize(with.size(), Byte{0});
  EXPECT_EQ(with, without);
}

}  // namespace
}  // namespace llio::mpiio
