// Edge cases of the shared iovec batch hygiene (pfs/iovec_util.hpp):
// zero-length handling, adjacency/coalescing, the contiguous-group walk
// the async queue-depth fan-out depends on, and offset arithmetic near
// the top of the Off range.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "pfs/iovec_util.hpp"
#include "pfs/file_backend.hpp"

namespace llio::pfs {
namespace {

ByteVec bytes(std::size_t n) { return ByteVec(n, Byte{0x5A}); }

TEST(IovecUtil, ZeroLengthOnlyBatchNormalizesToEmpty) {
  ByteVec b;
  const IoVec iov[] = {{0, b}, {100, b}, {5, b}};
  EXPECT_FALSE(iov_normalized(std::span<const IoVec>(iov)));
  std::vector<IoVec> out{{7, b}};  // stale contents must be cleared
  normalize_iov(std::span<const IoVec>(iov), out);
  EXPECT_TRUE(out.empty());
}

TEST(IovecUtil, EmptyBatchIsNormalizedAndDisjoint) {
  const std::span<const IoVec> none;
  EXPECT_TRUE(iov_normalized(none));
  EXPECT_TRUE(iov_groups_disjoint(none));
  int calls = 0;
  for_each_iov_batch(none, 4, [&](std::span<const IoVec>) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(IovecUtil, AdjacencyNeedsBothFileAndMemoryContiguity) {
  ByteVec buf = bytes(64);
  // File-adjacent + memory-adjacent: merges.
  const ConstIoVec both[] = {{0, {buf.data(), 16}}, {16, {buf.data() + 16, 16}}};
  EXPECT_TRUE(iov_adjacent(both[0], both[1]));
  // File-adjacent only (memory gap): stays split.
  const ConstIoVec file_only[] = {{0, {buf.data(), 16}},
                                  {16, {buf.data() + 32, 16}}};
  EXPECT_FALSE(iov_adjacent(file_only[0], file_only[1]));
  // Memory-adjacent only (file gap): stays split.
  const ConstIoVec mem_only[] = {{0, {buf.data(), 16}},
                                 {24, {buf.data() + 16, 16}}};
  EXPECT_FALSE(iov_adjacent(mem_only[0], mem_only[1]));

  std::vector<ConstIoVec> out;
  normalize_iov(std::span<const ConstIoVec>(both), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].offset, 0);
  EXPECT_EQ(out[0].buf.size(), 32u);
  normalize_iov(std::span<const ConstIoVec>(file_only), out);
  EXPECT_EQ(out.size(), 2u);
}

TEST(IovecUtil, NormalizeMergesRunsInterruptedByZeroLength) {
  // A zero-length segment between two mergeable halves must not break
  // the merge: it is dropped first, leaving the halves adjacent.
  ByteVec buf = bytes(32);
  ByteVec none;
  const ConstIoVec iov[] = {{0, {buf.data(), 16}},
                            {999, none},
                            {16, {buf.data() + 16, 16}}};
  std::vector<ConstIoVec> out;
  normalize_iov(std::span<const ConstIoVec>(iov), out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].buf.size(), 32u);
}

TEST(IovecUtil, BatchSplitFallsOnCoalescableBoundary) {
  // Six segments that form one mergeable run, split at batch_max=4: the
  // chunking is positional, so the run is cut mid-merge and the caller
  // sees two independent batches (4 + 2) — the documented trade-off of
  // bounding syscall width after normalization.
  ByteVec buf = bytes(6 * 8);
  std::vector<ConstIoVec> iov;
  for (int i = 0; i < 6; ++i)
    iov.push_back({Off{i} * 8, {buf.data() + i * 8, 8}});
  std::vector<std::size_t> widths;
  for_each_iov_batch(std::span<const ConstIoVec>(iov), 4,
                     [&](std::span<const ConstIoVec> chunk) {
                       widths.push_back(chunk.size());
                       // Each chunk is still one contiguous group.
                       EXPECT_EQ(contig_group_end(chunk, 0), chunk.size());
                     });
  EXPECT_EQ(widths, (std::vector<std::size_t>{4, 2}));
  // batch_max <= 0 means unbounded: one call with everything.
  widths.clear();
  for_each_iov_batch(std::span<const ConstIoVec>(iov), 0,
                     [&](std::span<const ConstIoVec> chunk) {
                       widths.push_back(chunk.size());
                     });
  EXPECT_EQ(widths, (std::vector<std::size_t>{6}));
}

TEST(IovecUtil, ContigGroupEndHonorsCapAndGaps) {
  ByteVec buf = bytes(64);
  // Segments 0..2 are file-contiguous, 3 starts after a gap.
  const IoVec iov[] = {{0, {buf.data(), 8}},
                       {8, {buf.data() + 8, 8}},
                       {16, {buf.data() + 16, 8}},
                       {100, {buf.data() + 24, 8}}};
  const std::span<const IoVec> s(iov);
  EXPECT_EQ(contig_group_end(s, 0), 3u);
  EXPECT_EQ(contig_group_end(s, 0, /*max_iov=*/2), 2u);
  EXPECT_EQ(contig_group_end(s, 3), 4u);
}

TEST(IovecUtil, GroupsDisjointDetectsOverlapAndOrder) {
  ByteVec buf = bytes(64);
  // Touching groups (next starts exactly at the previous end) are fine.
  const IoVec touching[] = {{0, {buf.data(), 16}}, {16, {buf.data() + 16, 16}}};
  EXPECT_TRUE(iov_groups_disjoint(std::span<const IoVec>(touching)));
  // Overlap by one byte: not safe to issue concurrently.
  const IoVec overlap[] = {{0, {buf.data(), 16}}, {15, {buf.data() + 16, 16}}};
  EXPECT_FALSE(iov_groups_disjoint(std::span<const IoVec>(overlap)));
  // Sorted-ness is required, even without byte overlap.
  const IoVec unsorted[] = {{32, {buf.data(), 8}}, {0, {buf.data() + 8, 8}}};
  EXPECT_FALSE(iov_groups_disjoint(std::span<const IoVec>(unsorted)));
}

TEST(IovecUtil, AdjacentOffsetsNearOffMax) {
  // A run ending exactly at the top of the Off range: the group walk
  // sums offsets + sizes without overflowing past the last segment.
  constexpr Off kMax = std::numeric_limits<Off>::max();
  ByteVec buf = bytes(32);
  const IoVec iov[] = {{kMax - 32, {buf.data(), 16}},
                       {kMax - 16, {buf.data() + 16, 16}}};
  const std::span<const IoVec> s(iov);
  EXPECT_EQ(contig_group_end(s, 0), 2u);
  EXPECT_TRUE(iov_groups_disjoint(s));
  // The same two segments in file-adjacent order but reversed memory:
  // still one group (file contiguity only), yet not mergeable.
  const IoVec rev[] = {{kMax - 32, {buf.data() + 16, 16}},
                       {kMax - 16, {buf.data(), 16}}};
  EXPECT_EQ(contig_group_end(std::span<const IoVec>(rev), 0), 2u);
  EXPECT_FALSE(iov_adjacent(rev[0], rev[1]));
}

}  // namespace
}  // namespace llio::pfs
