// Direct unit tests for the listless ViewNav / StreamMover (the engine
// internals the sieve/two-phase code composes).
#include <gtest/gtest.h>

#include "core/fotf_mover.hpp"
#include "core/listless_nav.hpp"
#include "io_test_util.hpp"

namespace llio::core {
namespace {

TEST(ListlessNavUnit, NavigationMatchesFotf) {
  const dt::Type ft = iotest::noncontig_filetype(4, 8, 2, 1);
  ListlessNav nav(ft);
  for (Off s = 0; s <= 3 * ft->size(); s += 3) {
    EXPECT_EQ(nav.stream_to_file_start(s), fotf::mem_start(ft, s));
    EXPECT_EQ(nav.stream_to_file_end(s), fotf::mem_end(ft, s));
  }
  for (Off m = 0; m <= 3 * ft->extent(); m += 5)
    EXPECT_EQ(nav.file_to_stream(m), fotf::data_below(ft, m));
}

TEST(ListlessNavUnit, ScatterGatherThroughWindow) {
  // View: 8-byte blocks at stride 16.  A window holding layout offsets
  // [16, 48) receives stream bytes [8, 24).
  const dt::Type ft = iotest::noncontig_filetype(8, 8, 2, 0);
  ListlessNav nav(ft);
  ByteVec window(32, Byte{0});
  ByteVec payload(16);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = Byte{static_cast<unsigned char>(i + 1)};
  nav.scatter(window.data(), /*bias=*/16, /*s=*/8, payload.data(), 16);
  for (int j = 0; j < 8; ++j) {
    EXPECT_EQ(window[to_size(Off{j})], payload[to_size(Off{j})]);        // block @16
    EXPECT_EQ(window[to_size(Off{16 + j})], payload[to_size(Off{8 + j})]);  // block @32
    EXPECT_EQ(window[to_size(Off{8 + j})], Byte{0});                     // gap
  }
  ByteVec got(16, Byte{0});
  nav.gather(got.data(), window.data(), 16, 8, 16);
  EXPECT_EQ(got, payload);
}

TEST(ListlessNavUnit, SequentialCallsAvoidReseek) {
  // Functional check that split sequential transfers equal one transfer.
  const dt::Type ft = iotest::noncontig_filetype(16, 8, 2, 0);
  ListlessNav nav(ft);
  const Off total = ft->size();
  ByteVec window(to_size(ft->extent()), Byte{0});
  ByteVec payload(to_size(total));
  for (Off i = 0; i < total; ++i)
    payload[to_size(i)] = Byte{static_cast<unsigned char>(i * 3 + 1)};
  Off done = 0;
  while (done < total) {
    const Off n = std::min<Off>(13, total - done);
    nav.scatter(window.data(), 0, done, payload.data() + done, n);
    done += n;
  }
  ListlessNav nav2(ft);
  ByteVec window2(window.size(), Byte{0});
  nav2.scatter(window2.data(), 0, 0, payload.data(), total);
  EXPECT_EQ(window, window2);
}

TEST(ListlessNavUnit, SegmentIterationCoversStream) {
  const dt::Type ft = iotest::noncontig_filetype(5, 8, 3, 1);
  ListlessNav nav(ft);
  Off covered = 0;
  Off last_stream = 20;
  nav.for_each_segment(20, 50, [&](Off mem, Off stream, Off len) {
    EXPECT_EQ(stream, last_stream);
    EXPECT_EQ(mem, fotf::mem_start(ft, stream));
    covered += len;
    last_stream = stream + len;
  });
  EXPECT_EQ(covered, 50);
}

TEST(FotfMoverUnit, RoundTripsAgainstReference) {
  testutil::Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    const dt::Type mt = testutil::random_type(rng, 3);
    if (mt->size() == 0) continue;
    const Off count = testutil::rnd(rng, 1, 3);
    auto buf = testutil::make_typed_buffer(mt, count);
    testutil::fill_typed_data(buf, mt, count);
    const ByteVec want = testutil::reference_pack(buf.base(), count, mt);
    FotfMover mover(buf.base(), count, mt);
    ByteVec got(want.size(), Byte{0});
    // Random-size sequential chunks (the sieve access pattern).
    Off done = 0;
    while (done < to_off(want.size())) {
      const Off n =
          std::min(to_off(want.size()) - done, testutil::rnd(rng, 1, 9));
      mover.to_stream(got.data() + done, done, n);
      done += n;
    }
    EXPECT_EQ(got, want) << dt::to_string(mt);

    // And back.
    auto dst = testutil::make_typed_buffer(mt, count, Byte{0x11});
    FotfMover unmover(dst.base(), count, mt);
    done = 0;
    while (done < to_off(want.size())) {
      const Off n =
          std::min(to_off(want.size()) - done, testutil::rnd(rng, 1, 7));
      unmover.from_stream(want.data() + done, done, n);
      done += n;
    }
    EXPECT_EQ(testutil::reference_pack(dst.base(), count, mt), want);
  }
}

TEST(FotfMoverUnit, NonSequentialAccessReseeks) {
  const dt::Type mt = dt::hvector(8, 4, 12, dt::byte());
  auto buf = testutil::make_typed_buffer(mt, 1);
  testutil::fill_typed_data(buf, mt, 1);
  const ByteVec want = testutil::reference_pack(buf.base(), 1, mt);
  FotfMover mover(buf.base(), 1, mt);
  // Jump around the stream.
  for (Off s : {Off{16}, Off{0}, Off{24}, Off{8}}) {
    ByteVec got(8);
    mover.to_stream(got.data(), s, 8);
    EXPECT_TRUE(std::equal(got.begin(), got.end(), want.begin() + s));
  }
}

}  // namespace
}  // namespace llio::core
