// Unit tests for the mergeview contiguity analysis (mpiio/mergeview):
// the per-window k-way hole detector over fileviews and ol-lists, the
// dense-disjoint bypass predicate, and the verdict cache.
#include <gtest/gtest.h>

#include "io_test_util.hpp"
#include "mpiio/mergeview.hpp"

namespace llio::mpiio {
namespace {

/// Contribution covering exactly the absolute file range [lo, hi).
ViewContribution extent_contrib(Off lo, Off hi) {
  return {dt::contiguous(hi - lo, dt::byte()), lo, 0, hi - lo};
}

TEST(AnalyzeViewDomain, ExactTilingIsDense) {
  // Three ranks of the paper's noncontig pattern tile the file without
  // holes: 8-byte blocks at stride 24, rank r displaced by r*8.
  std::vector<ViewContribution> contribs;
  for (int r = 0; r < 3; ++r)
    contribs.push_back(
        {iotest::noncontig_filetype(4, 8, 3, r), 0, 0, 32});
  const DomainWindows dw = analyze_view_domain(0, 96, 32, contribs);
  ASSERT_EQ(dw.dense.size(), 3u);
  EXPECT_TRUE(dw.all_dense);
  EXPECT_EQ(dw.dense_count(), 3);
  EXPECT_TRUE(dw.dense_at(0));
  EXPECT_TRUE(dw.dense_at(32));
  EXPECT_TRUE(dw.dense_at(64));

  // A window size that does not divide the domain: same verdicts.
  const DomainWindows odd = analyze_view_domain(0, 96, 40, contribs);
  ASSERT_EQ(odd.dense.size(), 3u);  // [0,40) [40,80) [80,96)
  EXPECT_TRUE(odd.all_dense);
}

TEST(AnalyzeViewDomain, MissingRankLeavesEveryWindowHoley) {
  // Only 2 of the 3 interleaved ranks participate: every third block is
  // a hole, so no window is dense.
  std::vector<ViewContribution> contribs;
  for (int r = 0; r < 2; ++r)
    contribs.push_back(
        {iotest::noncontig_filetype(4, 8, 3, r), 0, 0, 32});
  const DomainWindows dw = analyze_view_domain(0, 96, 32, contribs);
  EXPECT_FALSE(dw.all_dense);
  EXPECT_EQ(dw.dense_count(), 0);
}

TEST(AnalyzeViewDomain, OneByteHoleAtWindowBoundary) {
  // Union covers [0, 64) except byte 32 — the first byte of window 1.
  const std::vector<ViewContribution> contribs = {
      extent_contrib(0, 32),
      extent_contrib(33, 64),
      extent_contrib(10, 30),
  };
  const DomainWindows dw = analyze_view_domain(0, 64, 32, contribs);
  ASSERT_EQ(dw.dense.size(), 2u);
  EXPECT_TRUE(dw.dense_at(0));
  EXPECT_FALSE(dw.dense_at(32));
  EXPECT_FALSE(dw.all_dense);
}

TEST(AnalyzeViewDomain, OverlapDoesNotMaskAHole) {
  // The latent bug of a sum-based coverage test: contributions overlap,
  // so their sizes sum to >= the window size, yet byte 63 is a hole.
  // Only the exact k-way merge catches it.
  const std::vector<ViewContribution> contribs = {
      extent_contrib(32, 48),
      extent_contrib(48, 63),
      extent_contrib(40, 56),
  };
  const DomainWindows dw = analyze_view_domain(32, 64, 32, contribs);
  ASSERT_EQ(dw.dense.size(), 1u);
  EXPECT_FALSE(dw.dense_at(32));

  // Plugging the hole flips the verdict.
  auto plugged = contribs;
  plugged.push_back(extent_contrib(56, 64));
  EXPECT_TRUE(analyze_view_domain(32, 64, 32, plugged).all_dense);
}

TEST(AnalyzeViewDomain, HolesOnlyInOneDomain) {
  // The same global access analyzed per IOP domain: the hole at [96, 100)
  // lives entirely in the second domain and must not leak into the first.
  const std::vector<ViewContribution> contribs = {
      extent_contrib(0, 96),
      extent_contrib(100, 128),
  };
  const DomainWindows d0 = analyze_view_domain(0, 64, 32, contribs);
  EXPECT_TRUE(d0.all_dense);
  const DomainWindows d1 = analyze_view_domain(64, 128, 32, contribs);
  ASSERT_EQ(d1.dense.size(), 2u);
  EXPECT_TRUE(d1.dense_at(64));
  EXPECT_FALSE(d1.dense_at(96));
}

TEST(AnalyzeViewDomain, AccessRangeClampsTheView) {
  // The fileview alone would tile the domain, but the rank only accesses
  // the first 16 stream bytes: the tail windows are holey.
  const std::vector<ViewContribution> contribs = {
      {dt::contiguous(64, dt::byte()), 0, 0, 16},
  };
  const DomainWindows dw = analyze_view_domain(0, 64, 16, contribs);
  ASSERT_EQ(dw.dense.size(), 4u);
  EXPECT_TRUE(dw.dense_at(0));
  EXPECT_FALSE(dw.dense_at(16));
  EXPECT_FALSE(dw.dense_at(32));
  EXPECT_FALSE(dw.dense_at(48));
}

TEST(AnalyzeViewDomain, NonParticipantsAreIgnored) {
  std::vector<ViewContribution> contribs = {
      extent_contrib(0, 64),
      {dt::contiguous(64, dt::byte()), 0, 5, 5},  // s_hi == s_lo
  };
  const DomainWindows dw = analyze_view_domain(0, 64, 32, contribs);
  EXPECT_TRUE(dw.all_dense);
}

TEST(AnalyzeTupleDomain, DenseAndHoleyUnions) {
  using dt::OlTuple;
  const std::vector<OlTuple> a = {{0, 16}, {32, 16}};
  const std::vector<OlTuple> b = {{16, 16}, {48, 15}};  // byte 63 missing
  const std::vector<OlTuple> overlap = {{40, 16}};      // sum >= size anyway
  std::vector<std::span<const OlTuple>> lists = {a, b, overlap};
  const DomainWindows dw = analyze_tuple_domain(0, 64, 32, lists);
  ASSERT_EQ(dw.dense.size(), 2u);
  EXPECT_TRUE(dw.dense_at(0));
  EXPECT_FALSE(dw.dense_at(32));

  const std::vector<OlTuple> plug = {{63, 1}};
  std::vector<std::span<const OlTuple>> plugged = {a, b, overlap, plug};
  EXPECT_TRUE(analyze_tuple_domain(0, 64, 32, plugged).all_dense);
}

TEST(AnalyzeTupleDomain, TuplesStraddlingWindowsAreSplit) {
  using dt::OlTuple;
  const std::vector<OlTuple> a = {{0, 50}};  // crosses the window edge
  const std::vector<OlTuple> b = {{50, 14}};
  std::vector<std::span<const OlTuple>> lists = {a, b};
  const DomainWindows dw = analyze_tuple_domain(0, 64, 32, lists);
  EXPECT_TRUE(dw.all_dense);
}

TEST(RangesDenseDisjoint, Predicate) {
  auto range = [](Off s_lo, Off n, Off lo, Off hi) {
    return AccessRange{s_lo, n, lo, hi};
  };
  // Dense and disjoint (a gap between extents is fine — it just stays
  // untouched, exactly like the two-phase result).
  EXPECT_TRUE(ranges_dense_disjoint({range(0, 64, 0, 64),
                                     range(0, 64, 64, 128),
                                     range(0, 32, 200, 232)}));
  // Zero-participation ranks are ignored.
  EXPECT_TRUE(ranges_dense_disjoint({range(0, 64, 0, 64),
                                     range(0, 0, 999, 99999)}));
  // A holey restriction (span wider than the byte count) disqualifies.
  EXPECT_FALSE(ranges_dense_disjoint({range(0, 64, 0, 64),
                                      range(0, 32, 64, 128)}));
  // Overlapping extents disqualify (outcome would depend on ordering).
  EXPECT_FALSE(ranges_dense_disjoint({range(0, 64, 0, 64),
                                      range(0, 64, 32, 96)}));
  // Nobody participating: nothing to bypass.
  EXPECT_FALSE(ranges_dense_disjoint({range(0, 0, 0, 0)}));
  EXPECT_FALSE(ranges_dense_disjoint({}));
}

TEST(MergeCacheTest, HitsMissesAndEpochInvalidation) {
  MergeCache cache;
  const std::vector<AccessRange> ranges = {{0, 64, 0, 64}, {64, 64, 64, 128}};
  int computes = 0;
  auto compute = [&] {
    ++computes;
    DomainWindows dw;
    dw.lo = 0;
    dw.hi = 128;
    dw.win = 64;
    dw.dense = {1, 1};
    dw.all_dense = true;
    return dw;
  };
  const auto key = [&](std::uint64_t epoch) {
    return MergeCache::Key{epoch, 0, 128, 64, ranges};
  };

  EXPECT_TRUE(cache.get(key(1), compute).all_dense);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.misses(), 1u);

  // Same epoch + key: served from cache.
  EXPECT_TRUE(cache.get(key(1), compute).all_dense);
  EXPECT_EQ(computes, 1);
  EXPECT_EQ(cache.hits(), 1u);

  // A view change (new epoch) invalidates.
  cache.get(key(2), compute);
  EXPECT_EQ(computes, 2);

  // Different access ranges miss too.
  std::vector<AccessRange> other = ranges;
  other[0].nbytes = 32;
  cache.get(MergeCache::Key{2, 0, 128, 64, other}, compute);
  EXPECT_EQ(computes, 3);
}

TEST(MergeCacheTest, EvictsLeastRecentlyUsed) {
  MergeCache cache;
  auto compute = [] { return DomainWindows{}; };
  // Fill well past capacity with distinct domains …
  for (Off i = 0; i < 12; ++i)
    cache.get(MergeCache::Key{1, i * 100, i * 100 + 50, 50, {}}, compute);
  const auto misses = cache.misses();
  // … the newest key is still cached, the oldest has been evicted.
  cache.get(MergeCache::Key{1, 1100, 1150, 50, {}}, compute);
  EXPECT_EQ(cache.misses(), misses);
  cache.get(MergeCache::Key{1, 0, 50, 50, {}}, compute);
  EXPECT_EQ(cache.misses(), misses + 1);
}

}  // namespace
}  // namespace llio::mpiio
