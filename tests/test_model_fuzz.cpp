// Model-based randomized integration test: a trivially-correct reference
// implementation of MPI-IO semantics (explicit flatten + direct byte
// moves on a plain byte vector) is driven with the same random operation
// sequences as both engines.  Any divergence in file image or read-back
// is a bug in the engine under test.
#include <gtest/gtest.h>

#include "io_test_util.hpp"

namespace llio::mpiio {
namespace {

using testutil::Rng;

/// The oracle: a byte-vector "file" accessed through (disp, filetype)
/// views by brute-force stream expansion.
class ModelFile {
 public:
  void set_view(Off disp, dt::Type filetype) {
    disp_ = disp;
    list_ = dt::flatten(filetype, false);
    extent_ = filetype->extent();
  }

  void write(Off offset_bytes, ConstByteSpan payload) {
    apply(offset_bytes, to_off(payload.size()),
          [&](Off abs, Off stream_rel) { at(abs) = payload[to_size(stream_rel)]; });
  }

  ByteVec read(Off offset_bytes, Off n) const {
    ByteVec out(to_size(n), Byte{0});
    apply(offset_bytes, n, [&](Off abs, Off stream_rel) {
      if (abs < to_off(data_.size())) out[to_size(stream_rel)] = data_[to_size(abs)];
    });
    return out;
  }

  const ByteVec& image() const { return data_; }

 private:
  Byte& at(Off abs) {
    if (abs >= to_off(data_.size())) data_.resize(to_size(abs + 1), Byte{0});
    return data_[to_size(abs)];
  }

  template <typename Fn>
  void apply(Off stream_lo, Off n, Fn&& fn) const {
    // Walk stream bytes [stream_lo, stream_lo + n) of the view.
    Off s = 0;
    for (Off inst = 0; s < stream_lo + n; ++inst) {
      for (const auto& tp : list_.tuples()) {
        for (Off j = 0; j < tp.len && s < stream_lo + n; ++j, ++s) {
          if (s >= stream_lo)
            fn(disp_ + inst * extent_ + tp.off + j, s - stream_lo);
        }
      }
    }
  }

  Off disp_ = 0;
  dt::OlList list_ = dt::flatten(dt::byte());
  Off extent_ = 1;
  mutable ByteVec data_;
};

class ModelFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ModelFuzz, SingleRankOpSequencesMatchTheModel) {
  Rng rng(GetParam());
  for (int episode = 0; episode < 5; ++episode) {
    // One episode: a fresh file, a random sequence of view changes and
    // reads/writes, applied to the model and to both engines.
    struct Op {
      enum Kind { SetView, Write, Read } kind;
      dt::Type ft;
      Off disp = 0;
      Off offset = 0;  // etypes == bytes (etype is byte throughout)
      Off nbytes = 0;
      unsigned seed = 0;
    };
    std::vector<Op> ops;
    dt::Type cur = testutil::random_navigable_type(rng, 2);
    ops.push_back({Op::SetView, cur, testutil::rnd(rng, 0, 32)});
    const int nops = 14;
    for (int i = 0; i < nops; ++i) {
      const Off r = testutil::rnd(rng, 0, 9);
      if (r == 0) {
        cur = testutil::random_navigable_type(rng, 2);
        ops.push_back({Op::SetView, cur, testutil::rnd(rng, 0, 32)});
      } else {
        Op op;
        op.kind = r <= 5 ? Op::Write : Op::Read;
        op.offset = testutil::rnd(rng, 0, 2 * cur->size());
        op.nbytes = testutil::rnd(rng, 1, 3 * cur->size());
        op.seed = static_cast<unsigned>(testutil::rnd(rng, 1, 1 << 20));
        ops.push_back(op);
      }
    }

    // Model run.
    ModelFile model;
    std::vector<ByteVec> model_reads;
    {
      dt::Type ft;
      for (const Op& op : ops) {
        switch (op.kind) {
          case Op::SetView:
            model.set_view(op.disp, op.ft);
            break;
          case Op::Write: {
            ByteVec payload(to_size(op.nbytes));
            for (Off j = 0; j < op.nbytes; ++j)
              payload[to_size(j)] = iotest::payload_byte(
                  static_cast<int>(op.seed & 0xFF), j + op.seed);
            model.write(op.offset, payload);
            break;
          }
          case Op::Read:
            model_reads.push_back(model.read(op.offset, op.nbytes));
            break;
        }
      }
      (void)ft;
    }

    // Engine runs: both engines over every storage backend (MemFile plus
    // the file-server pool in all three request classes).
    const Off fbs = static_cast<Off>(testutil::rnd(rng, 1, 4)) * 64;
    for (Method m : {Method::ListBased, Method::Listless}) {
      for (iotest::Backend be : iotest::kAllBackends) {
        auto fs = iotest::make_backend(be);
        std::vector<ByteVec> reads;
        sim::Runtime::run(1, [&](sim::Comm& comm) {
          Options o;
          o.method = m;
          o.file_buffer_size = fbs;
          o.pack_buffer_size = 64;
          File f = File::open(comm, fs, o);
          for (const Op& op : ops) {
            switch (op.kind) {
              case Op::SetView:
                f.set_view(op.disp, dt::byte(), op.ft);
                break;
              case Op::Write: {
                ByteVec payload(to_size(op.nbytes));
                for (Off j = 0; j < op.nbytes; ++j)
                  payload[to_size(j)] = iotest::payload_byte(
                      static_cast<int>(op.seed & 0xFF), j + op.seed);
                f.write_at(op.offset, payload.data(), op.nbytes, dt::byte());
                break;
              }
              case Op::Read: {
                ByteVec got(to_size(op.nbytes), Byte{0});
                f.read_at(op.offset, got.data(), op.nbytes, dt::byte());
                reads.push_back(std::move(got));
                break;
              }
            }
          }
        });
        ASSERT_EQ(reads.size(), model_reads.size());
        for (std::size_t i = 0; i < reads.size(); ++i)
          EXPECT_EQ(reads[i], model_reads[i])
              << method_name(m) << " over " << iotest::backend_name(be)
              << " episode " << episode << " read " << i;
        ByteVec img = iotest::backend_image(fs);
        ByteVec want = model.image();
        iotest::pad_to_common(img, want);
        EXPECT_EQ(img, want) << method_name(m) << " over "
                             << iotest::backend_name(be) << " episode "
                             << episode;
      }
    }
  }
}

TEST_P(ModelFuzz, SingleRankCollectivesMatchTheModelAtBothDepths) {
  // Collective counterpart: the same random op sequence is replayed
  // through write_at_all/read_at_all for every engine at pipeline_depth
  // 0 and 2 — the pipelined window loop must be bit-identical to the
  // serial one on every random view.
  Rng rng(GetParam() + 7777u);
  for (int episode = 0; episode < 3; ++episode) {
    const dt::Type ft = testutil::random_navigable_type(rng, 2);
    const Off disp = testutil::rnd(rng, 0, 32);
    struct Op {
      bool write;
      Off offset, nbytes;
      unsigned seed;
    };
    std::vector<Op> ops;
    for (int i = 0; i < 8; ++i) {
      Op op;
      op.write = testutil::rnd(rng, 0, 1) == 0;
      op.offset = testutil::rnd(rng, 0, 2 * ft->size());
      op.nbytes = testutil::rnd(rng, 1, 3 * ft->size());
      op.seed = static_cast<unsigned>(testutil::rnd(rng, 1, 1 << 20));
      ops.push_back(op);
    }
    auto payload_of = [](const Op& op) {
      ByteVec payload(to_size(op.nbytes));
      for (Off j = 0; j < op.nbytes; ++j)
        payload[to_size(j)] = iotest::payload_byte(
            static_cast<int>(op.seed & 0xFF), j + op.seed);
      return payload;
    };

    ModelFile model;
    model.set_view(disp, ft);
    std::vector<ByteVec> model_reads;
    for (const Op& op : ops) {
      if (op.write)
        model.write(op.offset, payload_of(op));
      else
        model_reads.push_back(model.read(op.offset, op.nbytes));
    }

    const Off fbs = static_cast<Off>(testutil::rnd(rng, 1, 4)) * 64;
    for (Method m : {Method::ListBased, Method::Listless}) {
      for (int depth : {0, 2}) {
        for (iotest::Backend be : iotest::kAllBackends) {
          auto fs = iotest::make_backend(be);
          std::vector<ByteVec> reads;
          sim::Runtime::run(1, [&](sim::Comm& comm) {
            Options o;
            o.method = m;
            o.file_buffer_size = fbs;
            o.pack_buffer_size = 64;
            o.pipeline_depth = depth;
            File f = File::open(comm, fs, o);
            f.set_view(disp, dt::byte(), ft);
            for (const Op& op : ops) {
              if (op.write) {
                const ByteVec payload = payload_of(op);
                f.write_at_all(op.offset, payload.data(), op.nbytes,
                               dt::byte());
              } else {
                ByteVec got(to_size(op.nbytes), Byte{0});
                f.read_at_all(op.offset, got.data(), op.nbytes, dt::byte());
                reads.push_back(std::move(got));
              }
            }
          });
          ASSERT_EQ(reads.size(), model_reads.size());
          for (std::size_t i = 0; i < reads.size(); ++i)
            EXPECT_EQ(reads[i], model_reads[i])
                << method_name(m) << " depth " << depth << " over "
                << iotest::backend_name(be) << " episode " << episode
                << " read " << i;
          ByteVec img = iotest::backend_image(fs);
          ByteVec want = model.image();
          iotest::pad_to_common(img, want);
          EXPECT_EQ(img, want)
              << method_name(m) << " depth " << depth << " over "
              << iotest::backend_name(be) << " episode " << episode;
        }
      }
    }
  }
}

TEST_P(ModelFuzz, MultiRankCollectiveWritesIdenticalOffVsAuto) {
  // Mergeview must be a pure optimization: with the analysis enabled
  // (auto — elided pre-reads, dense-disjoint bypass) collective writes
  // produce byte-identical file images to the always-pre-read baseline
  // (off) — across overlapping random views, zero-participation ranks,
  // and pre-existing file contents.
  Rng rng(GetParam() + 31337u);
  for (int episode = 0; episode < 3; ++episode) {
    const int P = static_cast<int>(testutil::rnd(rng, 2, 4));
    std::vector<dt::Type> fts;
    std::vector<Off> disps;
    for (int r = 0; r < P; ++r) {
      fts.push_back(testutil::random_navigable_type(rng, 2));
      // Small random displacements: the ranks' views overlap arbitrarily.
      disps.push_back(testutil::rnd(rng, 0, 48));
    }
    struct Op {
      std::vector<Off> offset, nbytes;
      std::vector<unsigned> seed;
    };
    std::vector<Op> ops;
    for (int i = 0; i < 6; ++i) {
      Op op;
      for (int r = 0; r < P; ++r) {
        op.offset.push_back(testutil::rnd(rng, 0, 2 * fts[to_size(Off{r})]->size()));
        // 1 in 4: this rank participates with zero bytes.
        op.nbytes.push_back(testutil::rnd(rng, 0, 3) == 0
                                ? 0
                                : testutil::rnd(rng, 1, 3 * fts[to_size(Off{r})]->size()));
        op.seed.push_back(static_cast<unsigned>(testutil::rnd(rng, 1, 1 << 20)));
      }
      ops.push_back(std::move(op));
    }
    const Off fbs = static_cast<Off>(testutil::rnd(rng, 1, 4)) * 64;

    auto run = [&](Method m, int depth, MergeContig mode) {
      auto fs = pfs::MemFile::create();
      ByteVec old(2048);
      for (std::size_t i = 0; i < old.size(); ++i)
        old[i] = Byte{static_cast<unsigned char>(0xA0 + (i % 37))};
      fs->pwrite(0, old);
      sim::Runtime::run(P, [&](sim::Comm& comm) {
        Options o;
        o.method = m;
        o.file_buffer_size = fbs;
        o.pack_buffer_size = 64;
        o.pipeline_depth = depth;
        o.merge_contig = mode;
        File f = File::open(comm, fs, o);
        const int r = comm.rank();
        f.set_view(disps[to_size(Off{r})], dt::byte(), fts[to_size(Off{r})]);
        for (const Op& op : ops) {
          const Off n = op.nbytes[to_size(Off{r})];
          ByteVec payload(to_size(n));
          for (Off j = 0; j < n; ++j)
            payload[to_size(j)] = iotest::payload_byte(
                static_cast<int>(op.seed[to_size(Off{r})] & 0xFF),
                j + op.seed[to_size(Off{r})]);
          f.write_at_all(op.offset[to_size(Off{r})], payload.data(), n,
                         dt::byte());
        }
      });
      return fs->contents();
    };

    for (Method m : {Method::ListBased, Method::Listless}) {
      for (int depth : {0, 2}) {
        ByteVec off_img = run(m, depth, MergeContig::Off);
        ByteVec auto_img = run(m, depth, MergeContig::Auto);
        const std::size_t len = std::max(off_img.size(), auto_img.size());
        off_img.resize(len, Byte{0});
        auto_img.resize(len, Byte{0});
        EXPECT_EQ(off_img, auto_img)
            << method_name(m) << " depth " << depth << " episode " << episode
            << " seed " << GetParam();
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelFuzz,
                         ::testing::Values(101u, 202u, 303u, 404u, 505u));

}  // namespace
}  // namespace llio::mpiio
