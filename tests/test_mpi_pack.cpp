// MPI_Pack-style public API.
#include <gtest/gtest.h>

#include "fotf/mpi_pack.hpp"
#include "test_util.hpp"

namespace llio::fotf {
namespace {

TEST(MpiPack, PackSize) {
  EXPECT_EQ(pack_size(4, dt::double_()), 32);
  EXPECT_EQ(pack_size(3, dt::hvector(2, 1, 5, dt::byte())), 6);
  EXPECT_EQ(pack_size(0, dt::int_()), 0);
  EXPECT_THROW(pack_size(-1, dt::int_()), Error);
}

TEST(MpiPack, SequentialPackThenUnpack) {
  // Pack an int vector and a double into one buffer, MPI-style.
  const dt::Type vec = dt::vector(3, 1, 2, dt::int_());
  std::vector<int> ints = {1, 0, 2, 0, 3, 0};
  double d = 2.5;

  ByteVec buf(to_size(pack_size(1, vec) + pack_size(1, dt::double_())));
  Off pos = 0;
  pack(ints.data(), 1, vec, buf.data(), to_off(buf.size()), &pos);
  EXPECT_EQ(pos, 12);
  pack(&d, 1, dt::double_(), buf.data(), to_off(buf.size()), &pos);
  EXPECT_EQ(pos, 20);

  std::vector<int> ints2(6, 0);
  double d2 = 0;
  Off rpos = 0;
  unpack(buf.data(), to_off(buf.size()), &rpos, ints2.data(), 1, vec);
  unpack(buf.data(), to_off(buf.size()), &rpos, &d2, 1, dt::double_());
  EXPECT_EQ(rpos, 20);
  EXPECT_EQ(ints2[0], 1);
  EXPECT_EQ(ints2[2], 2);
  EXPECT_EQ(ints2[4], 3);
  EXPECT_EQ(ints2[1], 0);  // gaps untouched
  EXPECT_EQ(d2, 2.5);
}

TEST(MpiPack, BufferTooSmallThrows) {
  double d = 1.0;
  ByteVec buf(4);
  Off pos = 0;
  EXPECT_THROW(pack(&d, 1, dt::double_(), buf.data(), 4, &pos), Error);
  EXPECT_EQ(pos, 0);  // unchanged on failure
  Off rpos = 0;
  EXPECT_THROW(unpack(buf.data(), 4, &rpos, &d, 1, dt::double_()), Error);
}

TEST(MpiPack, RandomTypesRoundTrip) {
  testutil::Rng rng(77);
  for (int i = 0; i < 60; ++i) {
    const dt::Type t = testutil::random_type(rng, 3);
    if (t->size() == 0) continue;
    const Off count = testutil::rnd(rng, 1, 3);
    auto src = testutil::make_typed_buffer(t, count);
    testutil::fill_typed_data(src, t, count);
    ByteVec buf(to_size(pack_size(count, t)));
    Off pos = 0;
    pack(src.base(), count, t, buf.data(), to_off(buf.size()), &pos);
    EXPECT_EQ(pos, to_off(buf.size()));
    auto dst = testutil::make_typed_buffer(t, count, Byte{0});
    Off rpos = 0;
    unpack(buf.data(), to_off(buf.size()), &rpos, dst.base(), count, t);
    EXPECT_EQ(testutil::reference_pack(dst.base(), count, t), buf)
        << dt::to_string(t);
  }
}

}  // namespace
}  // namespace llio::fotf
