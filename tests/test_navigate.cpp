#include <gtest/gtest.h>

#include "fotf/navigate.hpp"
#include "listio/ol_walker.hpp"
#include "test_util.hpp"

namespace llio::fotf {
namespace {

using dt::Type;
using testutil::Rng;

/// Brute-force mem offset of stream byte s for unbounded tiling.
Off ref_mem_of(const Type& t, Off s) {
  const auto list = dt::flatten(t, false);
  const Off inst = s / t->size();
  Off rem = s % t->size();
  for (const auto& tp : list.tuples()) {
    if (rem < tp.len) return inst * t->extent() + tp.off + rem;
    rem -= tp.len;
  }
  // Exactly at an instance boundary: first byte of the next instance.
  return (inst + 1) * t->extent() + list.tuples().front().off;
}

/// Brute-force count of stream bytes with mem offset < x.
Off ref_below(const Type& t, Off x, Off max_instances) {
  const auto list = dt::flatten(t, false);
  Off n = 0;
  for (Off i = 0; i < max_instances; ++i) {
    for (const auto& tp : list.tuples()) {
      const Off off = i * t->extent() + tp.off;
      if (off + tp.len <= x)
        n += tp.len;
      else if (off < x)
        n += x - off;
    }
  }
  return n;
}

TEST(MemStart, SimpleVector) {
  const Type t = dt::hvector(3, 2, 5, dt::byte());  // blocks at 0,5,10
  EXPECT_EQ(mem_start(t, 0), 0);
  EXPECT_EQ(mem_start(t, 1), 1);
  EXPECT_EQ(mem_start(t, 2), 5);  // boundary: start of next block
  EXPECT_EQ(mem_start(t, 5), 11);
  EXPECT_EQ(mem_start(t, 6), t->extent() + 0);  // next instance
}

TEST(MemEnd, SimpleVector) {
  const Type t = dt::hvector(3, 2, 5, dt::byte());
  EXPECT_EQ(mem_end(t, 0), 0);
  EXPECT_EQ(mem_end(t, 1), 1);
  EXPECT_EQ(mem_end(t, 2), 2);   // one past byte 1 (mem 1)
  EXPECT_EQ(mem_end(t, 3), 6);   // one past byte 2 (mem 5)
  EXPECT_EQ(mem_end(t, 6), 12);  // one past the last byte
}

TEST(MemStartEnd, StartGeqEndAtBoundaries) {
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const Type t = testutil::random_navigable_type(rng, 3);
    for (Off s = 0; s <= 3 * t->size(); ++s) {
      EXPECT_GE(mem_start(t, s), mem_end(t, s)) << dt::to_string(t);
      if (s > 0) {
        EXPECT_GT(mem_end(t, s), mem_end(t, s - 1) - 1);
      }
    }
  }
}

TEST(MemStart, MatchesBruteForce) {
  Rng rng(99);
  for (int i = 0; i < 80; ++i) {
    const Type t = testutil::random_navigable_type(rng, 3);
    for (Off s = 0; s <= 2 * t->size() + 1; ++s)
      EXPECT_EQ(mem_start(t, s), ref_mem_of(t, s)) << dt::to_string(t)
                                                   << " s=" << s;
  }
}

TEST(DataBelow, SimpleVector) {
  const Type t =
      dt::resized(dt::hvector(3, 2, 5, dt::byte()), 0, 15);  // blocks 0,5,10
  EXPECT_EQ(data_below(t, 0), 0);
  EXPECT_EQ(data_below(t, 1), 1);
  EXPECT_EQ(data_below(t, 2), 2);
  EXPECT_EQ(data_below(t, 4), 2);  // gap
  EXPECT_EQ(data_below(t, 5), 2);
  EXPECT_EQ(data_below(t, 6), 3);
  EXPECT_EQ(data_below(t, 12), 6);
  EXPECT_EQ(data_below(t, 15), 6);
  EXPECT_EQ(data_below(t, 16), 7);  // second instance
}

TEST(DataBelow, MatchesBruteForce) {
  Rng rng(123);
  for (int i = 0; i < 80; ++i) {
    const Type t = testutil::random_navigable_type(rng, 3);
    ASSERT_TRUE(file_navigable(t)) << dt::to_string(t);
    const Off hi = 3 * t->extent() + 5;
    const Off insts = hi / t->extent() + 2;
    for (Off x = 0; x <= hi; ++x)
      EXPECT_EQ(data_below(t, x), ref_below(t, x, insts))
          << dt::to_string(t) << " x=" << x;
  }
}

TEST(DataBelow, InverseOfMemStart) {
  Rng rng(77);
  for (int i = 0; i < 60; ++i) {
    const Type t = testutil::random_navigable_type(rng, 3);
    for (Off s = 0; s <= 3 * t->size(); ++s) {
      // data strictly below the position of byte s is exactly s.
      EXPECT_EQ(data_below(t, mem_start(t, s)), s) << dt::to_string(t);
      EXPECT_EQ(data_below(t, mem_end(t, s)), s) << dt::to_string(t);
    }
  }
}

TEST(FfExtent, PaperFigure2Semantics) {
  const Type t =
      dt::resized(dt::hvector(4, 2, 6, dt::byte()), 0, 24);  // blocks 0,6,12,18
  // 4 bytes starting at stream 1: bytes at mem 1, 6, 7, 12 -> extent 12.
  EXPECT_EQ(ff_extent(t, 1, 4), 12);
  // Whole instance from 0: mem 0 .. 19+1.
  EXPECT_EQ(ff_extent(t, 0, 8), 20);
  EXPECT_EQ(ff_extent(t, 0, 0), 0);
}

TEST(FfSize, PaperFigure2Semantics) {
  const Type t = dt::resized(dt::hvector(4, 2, 6, dt::byte()), 0, 24);
  // Window of 12 starting at the position of stream byte 1 (mem 1):
  // holds bytes at mem 1, 6, 7, 12 -> 4 data bytes.
  EXPECT_EQ(ff_size(t, 1, 12), 4);
  EXPECT_EQ(ff_size(t, 0, 24), 8);
  EXPECT_EQ(ff_size(t, 0, 0), 0);
}

TEST(FfExtent, MatchesBruteForce) {
  Rng rng(808);
  for (int i = 0; i < 40; ++i) {
    const Type t = testutil::random_navigable_type(rng, 3);
    const Off total = 2 * t->size();
    for (int k = 0; k < 25; ++k) {
      const Off skip = testutil::rnd(rng, 0, total - 1);
      const Off size = testutil::rnd(rng, 1, total - skip);
      // Brute force: span from the position of byte `skip` to one past
      // the position of byte skip+size-1.
      const Off want = ref_mem_of(t, skip + size - 1) + 1 - ref_mem_of(t, skip);
      EXPECT_EQ(ff_extent(t, skip, size), want)
          << dt::to_string(t) << " skip=" << skip << " size=" << size;
    }
  }
}

TEST(FfSizeExtent, RoundTripInverse) {
  Rng rng(31);
  for (int i = 0; i < 60; ++i) {
    const Type t = testutil::random_navigable_type(rng, 3);
    const Off total = 3 * t->size();
    for (int k = 0; k < 20; ++k) {
      const Off skip = testutil::rnd(rng, 0, total - 1);
      const Off size = testutil::rnd(rng, 0, total - skip);
      const Off ext = ff_extent(t, skip, size);
      // A window of that extent holds at least those bytes...
      EXPECT_GE(ff_size(t, skip, ext), size) << dt::to_string(t);
      // ...and one byte less misses the last one.
      if (size > 0) {
        EXPECT_LT(ff_size(t, skip, ext - 1), size) << dt::to_string(t);
      }
    }
  }
}

TEST(FileNavigable, AcceptsValidFiletypes) {
  EXPECT_TRUE(file_navigable(dt::byte()));
  EXPECT_TRUE(file_navigable(dt::hvector(4, 2, 6, dt::byte())));
  EXPECT_TRUE(
      file_navigable(dt::resized(dt::hvector(4, 2, 6, dt::byte()), 0, 32)));
}

TEST(FileNavigable, RejectsInvalid) {
  // Negative data displacement.
  const Off nbls[] = {1};
  const Off nds[] = {-4};
  EXPECT_FALSE(file_navigable(dt::hindexed(nbls, nds, dt::byte())));
  // A negative *lb marker* with non-negative data is fine, though.
  EXPECT_TRUE(file_navigable(dt::resized(dt::byte(), -4, 8)));
  // Non-monotone.
  const Off bls[] = {1, 1};
  const Off ds[] = {8, 0};
  EXPECT_FALSE(file_navigable(dt::hindexed(bls, ds, dt::byte())));
  // Interleaving tiling (extent shorter than the data span).
  EXPECT_FALSE(
      file_navigable(dt::resized(dt::hvector(2, 1, 8, dt::byte()), 0, 4)));
  // Zero size.
  EXPECT_FALSE(file_navigable(dt::contiguous(0, dt::byte())));
  // Empty indexed block.
  const Off bls2[] = {1, 0};
  const Off ds2[] = {0, 8};
  EXPECT_FALSE(file_navigable(dt::hindexed(bls2, ds2, dt::byte())));
}

TEST(Navigate, AgreesWithOlWalkerOnRandomFiletypes) {
  // Cross-engine property: the listless navigation and the list-based
  // walker share no code beyond the Node tree — their answers must agree
  // on every position of every navigable type.
  Rng rng(606);
  for (int i = 0; i < 60; ++i) {
    const Type t = testutil::random_navigable_type(rng, 3);
    const dt::OlList list = dt::flatten(t);
    listio::OlWalker walker(&list, t->extent());
    const Off total = 3 * t->size();
    for (Off s = 0; s <= total; ++s) {
      walker.position(s);
      EXPECT_EQ(mem_start(t, s), walker.mem()) << dt::to_string(t)
                                               << " s=" << s;
      EXPECT_EQ(mem_end(t, s), walker.mem_end_of(s)) << dt::to_string(t);
    }
    for (Off x = 0; x <= 3 * t->extent(); x += 3)
      EXPECT_EQ(data_below(t, x), walker.bytes_below(x))
          << dt::to_string(t) << " x=" << x;
  }
}

TEST(Navigate, BtioLikeStructOfSubarrays) {
  // Struct of two disjoint subarray cells — the BTIO fileview shape.
  const Off n = 8;
  const Off sizes[] = {n, n};
  const Off sub[] = {4, 4};
  const Off s0[] = {0, 0};
  const Off s1[] = {4, 4};
  const Type a = dt::subarray(sizes, sub, s0, dt::Order::Fortran, dt::byte());
  const Type b = dt::subarray(sizes, sub, s1, dt::Order::Fortran, dt::byte());
  const Off bls[] = {1, 1};
  const Off ds[] = {0, 0};
  const Type kids[] = {a, b};
  const Type t = dt::struct_(bls, ds, kids);
  ASSERT_TRUE(file_navigable(t));
  for (Off s = 0; s <= 2 * t->size(); ++s) {
    EXPECT_EQ(mem_start(t, s), ref_mem_of(t, s)) << "s=" << s;
    EXPECT_EQ(data_below(t, mem_start(t, s)), s);
  }
}

}  // namespace
}  // namespace llio::fotf
