// dt::normalize: every rewrite must preserve the typemap (same bytes at
// the same offsets in the same order) and the lb/ub markers.
#include <gtest/gtest.h>

#include "dtype/normalize.hpp"
#include "test_util.hpp"

namespace llio::dt {
namespace {

void expect_equivalent(const Type& t) {
  const Type n = normalize(t);
  EXPECT_EQ(flatten(n, true).tuples(), flatten(t, true).tuples())
      << to_string(t) << " -> " << to_string(n);
  EXPECT_EQ(n->size(), t->size());
  EXPECT_EQ(n->lb(), t->lb());
  EXPECT_EQ(n->ub(), t->ub());
  EXPECT_EQ(n->is_monotone(), t->is_monotone());
}

TEST(Normalize, CollapsesTrivialWrappers) {
  const Type t = contiguous(1, contiguous(1, double_()));
  EXPECT_TRUE(equal(normalize(t), double_()));
}

TEST(Normalize, MergesNestedContiguous) {
  const Type t = contiguous(3, contiguous(4, int_()));
  const Type n = normalize(t);
  EXPECT_EQ(n->kind(), Kind::Contiguous);
  EXPECT_EQ(n->count(), 12);
  expect_equivalent(t);
}

TEST(Normalize, DenseVectorBecomesContiguous) {
  const Type t = vector(5, 3, 3, double_());  // stride == blocklen
  const Type n = normalize(t);
  EXPECT_EQ(n->kind(), Kind::Contiguous);
  EXPECT_EQ(n->count(), 15);
  expect_equivalent(t);
}

TEST(Normalize, SingleCountVector) {
  expect_equivalent(vector(1, 7, 100, int_()));
  EXPECT_EQ(normalize(vector(1, 7, 100, int_()))->kind(), Kind::Contiguous);
}

TEST(Normalize, HvectorOfContiguousFlattens) {
  // hvector(4, 1, 48, contiguous(3, double)) -> hvector(4, 3, 48, double).
  const Type t = hvector(4, 1, 48, contiguous(3, double_()));
  const Type n = normalize(t);
  EXPECT_EQ(n->kind(), Kind::Vector);
  EXPECT_EQ(n->blocklen(), 3);
  EXPECT_TRUE(equal(n->child(), double_()));
  expect_equivalent(t);
}

TEST(Normalize, UniformIndexedBecomesVector) {
  const Off bls[] = {2, 2, 2, 2};
  const Off ds[] = {0, 24, 48, 72};
  const Type t = hindexed(bls, ds, double_());
  const Type n = normalize(t);
  EXPECT_EQ(n->kind(), Kind::Vector);
  EXPECT_EQ(n->count(), 4);
  EXPECT_EQ(n->stride_bytes(), 24);
  expect_equivalent(t);
}

TEST(Normalize, NonUniformIndexedUnchangedShape) {
  const Off bls[] = {2, 1};
  const Off ds[] = {0, 24};
  const Type t = hindexed(bls, ds, double_());
  EXPECT_EQ(normalize(t)->kind(), Kind::Indexed);
  expect_equivalent(t);
}

TEST(Normalize, SingleBlockIndexedAtZero) {
  const Off bls[] = {6};
  const Off ds[] = {0};
  const Type n = normalize(hindexed(bls, ds, int_()));
  EXPECT_EQ(n->kind(), Kind::Contiguous);
}

TEST(Normalize, StructUnwrap) {
  const Off bls[] = {1};
  const Off ds[] = {0};
  const Type kids[] = {vector(2, 1, 3, int_())};
  EXPECT_TRUE(equal(normalize(struct_(bls, ds, kids)), kids[0]));
}

TEST(Normalize, RedundantResizedDropped) {
  const Type v = vector(2, 1, 3, int_());
  EXPECT_TRUE(equal(normalize(resized(v, v->lb(), v->extent())), v));
  // A meaningful resize survives.
  const Type r = resized(v, 0, 100);
  EXPECT_EQ(normalize(r)->extent(), 100);
}

TEST(Normalize, SubarrayNestSimplifies) {
  // subarray produces hindexed(resized(hvector(hvector(contig)))); rows
  // that span the whole dimension should melt into larger runs.
  const Off sizes[] = {8, 4};
  const Off subsizes[] = {8, 2};  // full rows of dim 0
  const Off starts[] = {0, 1};
  const Type t = subarray(sizes, subsizes, starts, Order::Fortran, double_());
  const Type n = normalize(t);
  expect_equivalent(t);
  EXPECT_LE(n->depth(), t->depth());
}

TEST(Normalize, NoncontigFiletypeKeepsStridedShape) {
  // The benchmark filetype (resized(hindexed([1@disp], hvector))) must
  // stay a strided pattern the vec-run kernels can drive.
  const Type v = hvector(8, 16, 64, byte());
  const Off bls[] = {1};
  const Off ds[] = {16};
  const Type ft = resized(hindexed(bls, ds, v), 0, 8 * 64);
  const Type n = normalize(ft);
  expect_equivalent(ft);
  EXPECT_TRUE(fotf::file_navigable(n));
}

TEST(Normalize, RandomTypesStayEquivalent) {
  testutil::Rng rng(515);
  for (int i = 0; i < 150; ++i) {
    const Type t = testutil::random_type(rng, 4);
    expect_equivalent(t);
  }
}

TEST(Normalize, RandomNavigableTypesStayNavigable) {
  testutil::Rng rng(717);
  for (int i = 0; i < 80; ++i) {
    const Type t = testutil::random_navigable_type(rng, 3);
    const Type n = normalize(t);
    expect_equivalent(t);
    EXPECT_TRUE(fotf::file_navigable(n)) << to_string(t);
  }
}

TEST(Normalize, ReducesDepthOfClumsyTrees) {
  Type t = byte();
  for (int i = 0; i < 6; ++i) t = contiguous(1, contiguous(2, t));
  const Type n = normalize(t);
  EXPECT_EQ(n->size(), 64);
  EXPECT_LE(n->depth(), 2);
}

}  // namespace
}  // namespace llio::dt
