// Observability subsystem tests: tracer gating and Chrome JSON output,
// metrics histograms/quantiles, TracedFile accounting against IoOpStats,
// and the pipeline timeline explainer's reconciliation with the engine's
// own overlap/wait numbers.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "io_test_util.hpp"
#include "mpiio/info.hpp"
#include "obs/explain.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_check.hpp"
#include "pfs/traced_file.hpp"

namespace llio {
namespace {

using iotest::noncontig_filetype;

/// The tracer and registry are process-global; scope every test's
/// configuration and restore the quiet defaults on the way out.
struct ObsSandbox {
  ObsSandbox(obs::TraceLevel level, bool metrics) {
    obs::Tracer::instance().set_level(level);
    obs::Tracer::instance().clear();
    obs::set_metrics_enabled(metrics);
    obs::Registry::instance().reset_values();
  }
  ~ObsSandbox() {
    obs::Tracer::instance().set_level(obs::TraceLevel::Off);
    obs::Tracer::instance().clear();
    obs::set_metrics_enabled(false);
    obs::Registry::instance().reset_values();
  }
};

TEST(Histogram, SmallValuesAreExact) {
  obs::Histogram h;
  for (long long v = 0; v < 16; ++v) h.record(v);
  const obs::HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 16u);
  EXPECT_EQ(s.min, 0);
  EXPECT_EQ(s.max, 15);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  // Values < 16 land in exact unit buckets.
  EXPECT_NEAR(h.quantile(0.5), 8.0, 1.0);
  EXPECT_NEAR(h.quantile(1.0), 15.0, 1e-9);
}

TEST(Histogram, QuantilesWithinLogBucketError) {
  obs::Histogram h;
  for (long long v = 1; v <= 100000; ++v) h.record(v);
  // Each octave splits into 4 sub-buckets: <= ~12% relative error, plus
  // interpolation.  Allow 15%.
  EXPECT_NEAR(h.quantile(0.50), 50000.0, 0.15 * 50000.0);
  EXPECT_NEAR(h.quantile(0.95), 95000.0, 0.15 * 95000.0);
  EXPECT_NEAR(h.quantile(0.99), 99000.0, 0.15 * 99000.0);
  const obs::HistogramSummary s = h.summary();
  EXPECT_EQ(s.count, 100000u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 100000);
}

TEST(Histogram, ResetZeroes) {
  obs::Histogram h;
  h.record(42);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.summary().count, 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
}

TEST(Registry, StableReferencesAndJson) {
  ObsSandbox sandbox(obs::TraceLevel::Off, true);
  auto& reg = obs::Registry::instance();
  obs::Counter& c = reg.counter("test.ops");
  c.add(3);
  EXPECT_EQ(&c, &reg.counter("test.ops"));  // same object on re-lookup
  reg.gauge("test.depth").set(7);
  reg.histogram("test.lat_us").record(1000);
  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"test.ops\":3"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.depth\":7"), std::string::npos) << json;
  EXPECT_NE(json.find("\"test.lat_us\""), std::string::npos) << json;
  const std::string table = reg.to_table();
  EXPECT_NE(table.find("test.ops"), std::string::npos) << table;
  // reset_values keeps registrations but zeroes contents.
  reg.reset_values();
  EXPECT_EQ(reg.counter("test.ops").value(), 0u);
  EXPECT_EQ(reg.histogram_summary("test.lat_us").count, 0u);
}

TEST(Tracer, OffEmitsNothing) {
  ObsSandbox sandbox(obs::TraceLevel::Off, false);
  {
    obs::Span s("should_not_record");
    EXPECT_FALSE(s.active());
    s.arg("k", 1);
  }
  obs::instant("also_not_recorded", obs::TraceLevel::Spans);
  EXPECT_TRUE(obs::Tracer::instance().snapshot().empty());
}

TEST(Tracer, LevelGatingAndArgs) {
  ObsSandbox sandbox(obs::TraceLevel::Spans, false);
  {
    obs::Span full_only("full_span", obs::TraceLevel::Full);
    EXPECT_FALSE(full_only.active());
  }
  {
    obs::Span s("phase_span");
    EXPECT_TRUE(s.active());
    s.arg("win", 3);
    s.arg("what", "ranges");
  }
  const auto events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "phase_span");
  EXPECT_EQ(events[0].phase, 'X');
  ASSERT_EQ(events[0].args.size(), 2u);
  EXPECT_EQ(events[0].args[0].key, "win");
  EXPECT_EQ(events[0].args[0].value, 3);
  EXPECT_TRUE(events[0].args[1].is_text);
  EXPECT_EQ(events[0].args[1].text, "ranges");
}

TEST(Tracer, ThreadTrackGuardAssignsAndRestores) {
  ObsSandbox sandbox(obs::TraceLevel::Spans, false);
  const int outer_pid = obs::current_pid();
  {
    obs::ThreadTrackGuard track(5, 2, "rank 5", "io worker 2");
    EXPECT_EQ(obs::current_pid(), 5);
    obs::Span s("on_track");
  }
  EXPECT_EQ(obs::current_pid(), outer_pid);
  const auto events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].pid, 5);
  EXPECT_EQ(events[0].tid, 2);
}

TEST(Tracer, ClearInvalidatesEventsBufferedInOtherThreads) {
  ObsSandbox sandbox(obs::TraceLevel::Spans, false);
  std::atomic<bool> recorded{false}, cleared{false};
  std::thread t([&] {
    { obs::Span s("stale"); }
    recorded.store(true);
    while (!cleared.load()) std::this_thread::yield();
    // Thread exit drains its buffer; the generation check must drop it.
  });
  while (!recorded.load()) std::this_thread::yield();
  obs::Tracer::instance().clear();
  cleared.store(true);
  t.join();
  { obs::Span s("fresh"); }
  const auto events = obs::Tracer::instance().snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "fresh");
}

TEST(Tracer, ChromeJsonValidates) {
  ObsSandbox sandbox(obs::TraceLevel::Spans, false);
  {
    obs::ThreadTrackGuard track(0, 0, "rank 0", "compute");
    obs::Span s("window");
    s.arg("win", 0LL);
    obs::instant("injected_fault", obs::TraceLevel::Spans,
                 {{"op", 0, "pread", true}});
  }
  const std::string json = obs::Tracer::instance().chrome_json();
  const obs::TraceCheckResult r = obs::check_chrome_trace(json);
  EXPECT_TRUE(r.ok) << r.error << "\n" << json;
  EXPECT_EQ(r.spans, 1);
  EXPECT_TRUE(r.names.count("window"));
  EXPECT_TRUE(r.names.count("injected_fault"));
}

TEST(TraceCheck, RejectsMalformedTraces) {
  EXPECT_FALSE(obs::check_chrome_trace("not json").ok);
  EXPECT_FALSE(obs::check_chrome_trace("{\"noEvents\":[]}").ok);
  // 'X' without dur.
  EXPECT_FALSE(obs::check_chrome_trace(
                   "[{\"name\":\"a\",\"ph\":\"X\",\"pid\":0,\"tid\":0,"
                   "\"ts\":1}]")
                   .ok);
  // Unbalanced 'B'.
  EXPECT_FALSE(obs::check_chrome_trace(
                   "[{\"name\":\"a\",\"ph\":\"B\",\"pid\":0,\"tid\":0,"
                   "\"ts\":1}]")
                   .ok);
  // Balanced 'B'/'E' is fine.
  EXPECT_TRUE(obs::check_chrome_trace(
                  "[{\"name\":\"a\",\"ph\":\"B\",\"pid\":0,\"tid\":0,"
                  "\"ts\":1},{\"name\":\"a\",\"ph\":\"E\",\"pid\":0,"
                  "\"tid\":0,\"ts\":2}]")
                  .ok);
}

TEST(InfoHints, ObservabilityRoundTrip) {
  mpiio::Options o;
  EXPECT_FALSE(mpiio::options_to_info(o).get("llio_trace").has_value());
  o.trace = obs::TraceLevel::Full;
  o.trace_file = "out.json";
  o.metrics = true;
  const mpiio::Info info = mpiio::options_to_info(o);
  EXPECT_EQ(info.get("llio_trace"), "full");
  EXPECT_EQ(info.get("llio_trace_file"), "out.json");
  EXPECT_EQ(info.get("llio_metrics"), "on");
  const mpiio::Options back = mpiio::apply_info(info, mpiio::Options{});
  ASSERT_TRUE(back.trace.has_value());
  EXPECT_EQ(*back.trace, obs::TraceLevel::Full);
  EXPECT_EQ(back.trace_file, "out.json");
  EXPECT_EQ(back.metrics, true);
  EXPECT_THROW(
      mpiio::apply_info(mpiio::Info{{"llio_trace", "verbose"}}, {}), Error);
  EXPECT_THROW(
      mpiio::apply_info(mpiio::Info{{"llio_metrics", "yes"}}, {}), Error);
  EXPECT_THROW(
      mpiio::apply_info(mpiio::Info{{"llio_trace_file", ""}}, {}), Error);
}

/// Run one pipelined collective write (2 ranks, 4 windows per IOP) and
/// return the folded per-rank stats.  The interesting trace content —
/// spans from concurrent I/O workers nested against compute windows —
/// accumulates in the global tracer.
mpiio::IoOpStats run_pipelined_write(bool metrics_wrap) {
  const int P = 2;
  const Off sblock = 64, nblock = 256;  // 16 KiB per rank
  const Off nbytes = nblock * sblock;
  auto fs = pfs::MemFile::create();
  std::mutex mu;
  mpiio::IoOpStats folded;
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    mpiio::Options o;
    o.method = mpiio::Method::Listless;
    o.file_buffer_size = 4096;  // 4 windows per IOP domain
    o.pipeline_depth = 2;
    if (metrics_wrap) o.metrics = true;
    mpiio::File f = mpiio::File::open(comm, fs, o);
    f.set_view(0, dt::byte(),
               noncontig_filetype(nblock, sblock, P, comm.rank()));
    ByteVec buf(to_size(nbytes), Byte{0x42});
    f.write_at_all(0, buf.data(), nbytes, dt::byte());
    std::lock_guard<std::mutex> lk(mu);
    folded += f.last_stats();
  });
  return folded;
}

TEST(PipelineTrace, ConcurrentWorkerSpansValidate) {
  ObsSandbox sandbox(obs::TraceLevel::Spans, false);
  run_pipelined_write(false);
  const auto events = obs::Tracer::instance().snapshot();
  ASSERT_FALSE(events.empty());

  int window_spans = 0, worker_io_spans = 0, wait_spans = 0;
  for (const auto& ev : events) {
    if (ev.phase != 'X') continue;
    if (ev.name == "window") {
      ++window_spans;
      EXPECT_EQ(ev.tid, 0);  // windows are compute-thread spans
      bool has_win = false;
      for (const auto& a : ev.args) has_win |= a.key == "win" && !a.is_text;
      EXPECT_TRUE(has_win);
    } else if (ev.name == "pwrite") {
      ++worker_io_spans;
      EXPECT_GE(ev.tid, 1);  // depth > 0 puts file I/O on worker tracks
    } else if (ev.name == "io_wait") {
      ++wait_spans;
      EXPECT_EQ(ev.tid, 0);
    }
  }
  // 2 ranks x 4 windows each.
  EXPECT_EQ(window_spans, 8);
  EXPECT_EQ(worker_io_spans, 8);
  EXPECT_GE(wait_spans, 8);

  const std::string json = obs::Tracer::instance().chrome_json();
  const obs::TraceCheckResult r = obs::check_chrome_trace(json);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GE(r.tracks, 4);  // 2 ranks x (compute + >= 1 worker)
  EXPECT_TRUE(r.names.count("window"));
  EXPECT_TRUE(r.names.count("pwrite"));
  EXPECT_TRUE(r.names.count("pack"));
}

TEST(PipelineTrace, ExplainReconcilesWithIoOpStats) {
  ObsSandbox sandbox(obs::TraceLevel::Spans, false);
  const mpiio::IoOpStats stats = run_pipelined_write(false);
  const obs::PipelineReport report =
      obs::explain_pipeline(obs::Tracer::instance().snapshot());

  ASSERT_EQ(report.ranks.size(), 2u);
  for (const auto& rank : report.ranks) EXPECT_EQ(rank.windows, 4);

  // Same formula as the engine: the trace-derived totals must agree with
  // the stats within 5% plus a small absolute slack (the span brackets
  // the timed region, so it can only be marginally wider).
  const double wait_s = report.io_wait_us / 1e6;
  const double overlap_s = report.overlap_us / 1e6;
  EXPECT_NEAR(wait_s, stats.io_wait_s,
              0.05 * std::max(wait_s, stats.io_wait_s) + 2e-3);
  EXPECT_NEAR(overlap_s, stats.overlap_s,
              0.05 * std::max(overlap_s, stats.overlap_s) + 2e-3);

  const std::string text = obs::format_pipeline_report(report, true);
  EXPECT_NE(text.find("rank"), std::string::npos) << text;
}

TEST(TracedFile, ByteCountsMatchIoOpStats) {
  ObsSandbox sandbox(obs::TraceLevel::Off, true);
  const mpiio::IoOpStats stats = run_pipelined_write(true);
  ASSERT_GT(stats.file_write_bytes, 0);

  auto& reg = obs::Registry::instance();
  const obs::HistogramSummary wr = reg.histogram_summary("file.write_bytes");
  const obs::HistogramSummary rd = reg.histogram_summary("file.read_bytes");
  EXPECT_EQ(wr.count, stats.file_write_ops);
  EXPECT_EQ(rd.count, stats.file_read_ops);
  // sum == mean * count exactly (the histogram keeps an exact sum).
  EXPECT_EQ(std::llround(wr.mean * static_cast<double>(wr.count)),
            stats.file_write_bytes);
  EXPECT_EQ(std::llround(rd.mean * static_cast<double>(rd.count)),
            stats.file_read_bytes);
  EXPECT_GT(reg.histogram_summary("file.pwrite_us").count, 0u);
}

TEST(TracedFile, WrapIsIdempotentAndForwards) {
  ObsSandbox sandbox(obs::TraceLevel::Off, true);
  auto inner = pfs::MemFile::create();
  pfs::FilePtr wrapped = pfs::TracedFile::wrap(inner);
  ASSERT_NE(dynamic_cast<pfs::TracedFile*>(wrapped.get()), nullptr);
  ByteVec data(128, Byte{0x5a});
  wrapped->pwrite(0, data);
  EXPECT_EQ(wrapped->size(), 128);
  EXPECT_EQ(inner->size(), 128);
  ByteVec back(128, Byte{0});
  EXPECT_EQ(wrapped->pread(0, back), 128);
  EXPECT_EQ(back, data);
  EXPECT_EQ(obs::Registry::instance()
                .histogram_summary("file.write_bytes")
                .count,
            1u);
}

}  // namespace
}  // namespace llio
