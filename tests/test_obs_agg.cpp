// Job-level observability tests: mergeable histogram data (unit + fuzz),
// RankSnapshot wire roundtrip, Collector phase statistics and straggler
// identification, the collective aggregate() over a multi-rank world with
// an injected slow rank, the always-on sampling ring (wrap-around and
// reader-during-writes coherence), and the critical-path attribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <climits>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include "io_test_util.hpp"
#include "mpiio/file.hpp"
#include "obs/agg.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "pfs/mem_file.hpp"
#include "pfs/throttled_file.hpp"
#include "simmpi/comm.hpp"

namespace llio {
namespace {

/// The registry/tracer/sampler are process-global; every test here scopes
/// its configuration and restores the quiet defaults on the way out.
struct ObsSandbox {
  explicit ObsSandbox(bool metrics) {
    obs::set_metrics_enabled(metrics);
    obs::Registry::instance().reset_values();
    obs::Sampler::instance().set_enabled(true);
    obs::Sampler::instance().reset();
  }
  ~ObsSandbox() {
    obs::set_metrics_enabled(false);
    obs::Registry::instance().reset_values();
    obs::Sampler::instance().set_enabled(true);
    obs::Sampler::instance().reset();
  }
};

// ---- log-linear bucket geometry ----------------------------------------

// Bucket 251 covers up to exactly LLONG_MAX (its octave is msb 62), so
// indices 252..255 are unreachable padding; the geometry checks stop there.
constexpr int kLastReachableBucket = 251;

TEST(HistogramBuckets, EdgeRoundtripAndMonotonic) {
  long long prev_lo = -1;
  for (int idx = 0; idx <= kLastReachableBucket; ++idx) {
    long long lo = 0, hi = 0;
    obs::histogram_bucket_bounds(idx, lo, hi);
    ASSERT_LE(lo, hi) << "bucket " << idx;
    // A bucket's own bounds must map back to the bucket: this is the
    // exact property the merged-quantile reconciliation rests on.
    EXPECT_EQ(obs::histogram_bucket_index(lo), idx);
    EXPECT_EQ(obs::histogram_bucket_index(hi), idx);
    EXPECT_GT(lo, prev_lo) << "bucket " << idx;
    prev_lo = lo;
  }
  // Index is monotonic over a dense value sweep across the exact/log
  // boundary (values < 16 are exact unit buckets).
  int last = obs::histogram_bucket_index(0);
  for (long long v = 1; v < 4096; ++v) {
    const int idx = obs::histogram_bucket_index(v);
    EXPECT_GE(idx, last) << "value " << v;
    last = idx;
  }
  EXPECT_EQ(obs::histogram_bucket_index(LLONG_MAX), kLastReachableBucket);
  EXPECT_EQ(obs::histogram_bucket_index(-5), 0);  // clamped, not UB
}

// ---- HistogramData merge ------------------------------------------------

TEST(HistogramMerge, MergeEqualsHistogramOfUnion) {
  obs::HistogramData a, b, all;
  for (long long v = 1; v <= 500; v += 3) { a.record(v * 7); all.record(v * 7); }
  for (long long v = 1; v <= 300; v += 2) { b.record(v * 13); all.record(v * 13); }
  obs::HistogramData merged = a;
  merged.merge(b);
  EXPECT_EQ(merged.count, all.count);
  EXPECT_EQ(merged.sum, all.sum);
  EXPECT_EQ(merged.min, all.min);
  EXPECT_EQ(merged.max, all.max);
  ASSERT_EQ(merged.buckets.size(), all.buckets.size());
  for (std::size_t i = 0; i < merged.buckets.size(); ++i) {
    EXPECT_EQ(merged.buckets[i].first, all.buckets[i].first);
    EXPECT_EQ(merged.buckets[i].second, all.buckets[i].second);
  }
  // Identical sparse bucket lists give identical quantiles: merge order
  // cannot change the answer.
  for (double q : {0.5, 0.95, 0.99})
    EXPECT_DOUBLE_EQ(merged.quantile(q), all.quantile(q));
}

TEST(HistogramMerge, EmptyAndOverflowBuckets) {
  obs::HistogramData empty;
  EXPECT_EQ(empty.count, 0u);
  EXPECT_DOUBLE_EQ(empty.quantile(0.99), 0.0);

  obs::HistogramData h;
  h.record(LLONG_MAX);  // lands in the last reachable bucket
  h.record(0);
  obs::HistogramData merged = empty;
  merged.merge(h);
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.max, LLONG_MAX);
  // Quantiles clamp to the observed [min, max] even from that bucket.
  EXPECT_LE(merged.quantile(1.0), static_cast<double>(LLONG_MAX));
  EXPECT_GE(merged.quantile(0.0), 0.0);
  obs::HistogramData other = h;
  other.merge(empty);  // merging an empty histogram is the identity
  EXPECT_EQ(other.count, 2u);
  EXPECT_EQ(other.sum, h.sum);
}

TEST(HistogramMerge, FuzzQuantilesWithinOneBucketOfExact) {
  std::mt19937 rng(20260808);  // fixed seed: the test is deterministic
  for (int round = 0; round < 20; ++round) {
    const std::size_t nranks = 1 + rng() % 7;
    const int n = 50 + static_cast<int>(rng() % 400);
    std::uniform_int_distribution<long long> dist(0, 1LL << (4 + round % 18));
    std::vector<long long> values;
    std::vector<obs::HistogramData> parts(nranks);
    for (int i = 0; i < n; ++i) {
      const long long v = dist(rng);
      values.push_back(v);
      parts[rng() % nranks].record(v);
    }
    obs::HistogramData merged;
    std::uint64_t total = 0;
    for (const obs::HistogramData& p : parts) {
      merged.merge(p);
      total += p.count;
    }
    ASSERT_EQ(merged.count, static_cast<std::uint64_t>(n));
    ASSERT_EQ(merged.count, total);
    std::sort(values.begin(), values.end());
    for (double q : {0.5, 0.9, 0.95, 0.99}) {
      // Nearest-rank exact quantile over the raw values.
      const std::size_t rank = std::min(
          values.size() - 1,
          static_cast<std::size_t>(
              std::max(1.0, std::ceil(q * static_cast<double>(n)))) - 1);
      const long long exact = values[rank];
      const double est = merged.quantile(q);
      const int exact_bucket = obs::histogram_bucket_index(exact);
      const int est_bucket =
          obs::histogram_bucket_index(static_cast<long long>(est));
      EXPECT_LE(std::abs(exact_bucket - est_bucket), 1)
          << "round " << round << " q " << q << " exact " << exact
          << " est " << est;
      // Determinism: asking twice gives the identical answer.
      EXPECT_DOUBLE_EQ(est, merged.quantile(q));
    }
  }
}

// ---- RankSnapshot wire format ------------------------------------------

TEST(RankSnapshot, SerializeRoundtrip) {
  obs::RankSnapshot s;
  s.rank = 3;
  s.phases = {{"total", 1.25}, {"io", 0.5}, {"pack", 0.0}};
  s.counters = {{"bytes_moved", 123456789ull}, {"file_write_ops", 7ull}};
  obs::HistogramData h;
  for (long long v : {1, 50, 900, 70000}) h.record(v);
  s.hists = {{"op.total_us", h}};

  const ByteVec raw = s.serialize();
  const obs::RankSnapshot back =
      obs::RankSnapshot::deserialize(ConstByteSpan(raw.data(), raw.size()));
  EXPECT_EQ(back.rank, 3);
  ASSERT_EQ(back.phases.size(), s.phases.size());
  EXPECT_EQ(back.phases[0].first, "total");
  EXPECT_DOUBLE_EQ(back.phases[0].second, 1.25);
  ASSERT_EQ(back.counters.size(), s.counters.size());
  EXPECT_EQ(back.counters[0].second, 123456789ull);
  ASSERT_EQ(back.hists.size(), 1u);
  EXPECT_EQ(back.hists[0].first, "op.total_us");
  EXPECT_EQ(back.hists[0].second.count, 4u);
  EXPECT_EQ(back.hists[0].second.sum, h.sum);
  EXPECT_DOUBLE_EQ(back.hists[0].second.quantile(0.5), h.quantile(0.5));

  // Truncated payloads are rejected, not misread.
  EXPECT_THROW(obs::RankSnapshot::deserialize(
                   ConstByteSpan(raw.data(), raw.size() - 1)),
               Error);
}

// ---- Collector ----------------------------------------------------------

obs::RankSnapshot synthetic_rank(int rank, double total_s, double io_s) {
  obs::RankSnapshot s;
  s.rank = rank;
  s.phases = {{"total", total_s}, {"io", io_s}};
  s.counters = {{"bytes_moved", 100ull}};
  obs::HistogramData h;
  h.record(static_cast<long long>(total_s * 1e6));
  s.hists = {{"op.total_us", h}};
  return s;
}

TEST(Collector, PhaseSpreadAndStraggler) {
  // Rank 2 does twice the work: it must be named the straggler.
  const obs::JobReport r = obs::Collector::build(
      {synthetic_rank(0, 1.0, 0.2), synthetic_rank(1, 1.0, 0.0),
       synthetic_rank(2, 2.0, 1.0)});
  EXPECT_EQ(r.nranks, 3);
  ASSERT_EQ(r.ranks.size(), 3u);
  const obs::PhaseStats* total = r.phase("total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->min_s, 1.0);
  EXPECT_DOUBLE_EQ(total->max_s, 2.0);
  EXPECT_DOUBLE_EQ(total->median_s, 1.0);
  EXPECT_EQ(total->max_rank, 2);
  EXPECT_NEAR(total->imbalance, 1.5, 1e-9);
  ASSERT_EQ(total->per_rank_s.size(), 3u);
  EXPECT_DOUBLE_EQ(total->per_rank_s[2], 2.0);
  EXPECT_EQ(r.straggler_rank, 2);
  EXPECT_NEAR(r.straggler_imbalance, 1.5, 1e-9);
  // Counters sum across ranks.
  ASSERT_FALSE(r.counters.empty());
  EXPECT_EQ(r.counters[0].second, 300ull);
  // Merged histogram count is the sum of the per-rank counts.
  ASSERT_EQ(r.hists.size(), 1u);
  EXPECT_EQ(r.hists[0].merged.count, 3u);
  ASSERT_EQ(r.hists[0].per_rank.size(), 3u);
  // The report JSON carries the schema tag CI keys on.
  EXPECT_NE(r.to_json().find("llio_report/v1"), std::string::npos);
}

TEST(Collector, BalancedJobNamesNoStraggler) {
  const obs::JobReport r = obs::Collector::build(
      {synthetic_rank(0, 1.0, 0.0), synthetic_rank(1, 1.01, 0.0)});
  EXPECT_EQ(r.straggler_rank, -1);
}

TEST(Collector, UnionAlignsMissingPhases) {
  obs::RankSnapshot a = synthetic_rank(0, 1.0, 0.1);
  obs::RankSnapshot b = synthetic_rank(1, 1.0, 0.1);
  b.phases.emplace_back("wait", 0.5);  // rank 1 only
  const obs::JobReport r = obs::Collector::build({a, b});
  const obs::PhaseStats* wait = r.phase("wait");
  ASSERT_NE(wait, nullptr);
  ASSERT_EQ(wait->per_rank_s.size(), 2u);
  EXPECT_DOUBLE_EQ(wait->per_rank_s[0], 0.0);  // absent = 0 on rank 0
  EXPECT_DOUBLE_EQ(wait->per_rank_s[1], 0.5);
}

// ---- collective aggregate over a multi-rank world -----------------------

TEST(Aggregate, MultiRankReportNamesInjectedStraggler) {
  ObsSandbox sandbox(/*metrics=*/true);
  constexpr int kRanks = 4;
  constexpr int kSlowRank = 2;
  constexpr int kOps = 3;
  const Off len = 64 * 1024;
  const std::string report_path =
      testing::TempDir() + "llio_report_test.json";
  std::remove(report_path.c_str());

  auto shared = pfs::MemFile::create();
  std::mutex mu;
  std::vector<obs::JobReport> reports;
  sim::Runtime::run(kRanks, [&](sim::Comm& comm) {
    pfs::FilePtr backend = shared;
    if (comm.rank() == kSlowRank) {
      // The backend pointer is per-rank (only the lock/shared-fp state is
      // exchanged at open), so one rank can see a throttled view of the
      // same storage: every access costs +4ms — an obvious straggler.
      pfs::ThrottleConfig cfg;
      cfg.op_latency_s = 0.004;
      backend = pfs::ThrottledFile::wrap(shared, cfg);
    }
    mpiio::Options o;
    o.metrics = true;
    o.report_path = report_path;
    mpiio::File f = mpiio::File::open(comm, backend, o);
    ByteVec buf(to_size(len), Byte{0x5a});
    for (int i = 0; i < kOps; ++i)
      f.write_at(comm.rank() * len, buf.data(), len, dt::byte());
    const obs::JobReport r = f.close();
    std::lock_guard lock(mu);
    reports.push_back(r);
  });

  ASSERT_EQ(reports.size(), static_cast<std::size_t>(kRanks));
  for (const obs::JobReport& r : reports) {
    EXPECT_EQ(r.nranks, kRanks);
    // The throttled rank dominates the job and is named.
    EXPECT_EQ(r.straggler_rank, kSlowRank);
    EXPECT_GT(r.straggler_imbalance, 1.05);
    // Merged per-phase histogram counts reconcile with the per-rank ones.
    bool saw_total = false;
    for (const obs::MergedHistogram& h : r.hists) {
      std::uint64_t sum = 0;
      for (const obs::HistogramSummary& pr : h.per_rank) sum += pr.count;
      EXPECT_EQ(h.merged.count, sum) << h.name;
      if (h.name == "op.total_us") {
        saw_total = true;
        EXPECT_EQ(h.merged.count,
                  static_cast<std::uint64_t>(kRanks * kOps));
        // The merged p99 lies within one log-linear bucket of the
        // per-rank p99 envelope (identical bucket edges on every rank).
        int lo_bucket = INT_MAX, hi_bucket = INT_MIN;
        for (const obs::HistogramSummary& pr : h.per_rank) {
          if (pr.count == 0) continue;
          const int b = obs::histogram_bucket_index(
              static_cast<long long>(pr.p99));
          lo_bucket = std::min(lo_bucket, b);
          hi_bucket = std::max(hi_bucket, b);
        }
        const int merged_bucket = obs::histogram_bucket_index(
            static_cast<long long>(h.merged.quantile(0.99)));
        EXPECT_GE(merged_bucket, lo_bucket - 1);
        EXPECT_LE(merged_bucket, hi_bucket + 1);
      }
    }
    EXPECT_TRUE(saw_total);
    EXPECT_GT(r.samples_produced, 0u);
  }

  // Rank 0 wrote the JSON report.
  std::FILE* fp = std::fopen(report_path.c_str(), "rb");
  ASSERT_NE(fp, nullptr);
  std::string json(1 << 16, '\0');
  json.resize(std::fread(json.data(), 1, json.size(), fp));
  std::fclose(fp);
  EXPECT_NE(json.find("\"schema\":\"llio_report/v1\""), std::string::npos);
  EXPECT_NE(json.find("\"straggler\""), std::string::npos);
  std::remove(report_path.c_str());
}

// ---- sampling ring ------------------------------------------------------

TEST(Sampler, RingWrapKeepsNewestAndCounts) {
  ObsSandbox sandbox(/*metrics=*/false);
  obs::Sampler& s = obs::Sampler::instance();
  s.set_capacity(8);
  for (int i = 0; i < 100; ++i) {
    obs::OpSample smp;
    smp.rank = 0;
    smp.bytes = i;
    s.record(smp);
  }
  const obs::MetricsSnapshot snap = s.snapshot();
  EXPECT_EQ(snap.capacity, 8u);
  EXPECT_EQ(snap.produced, 100u);
  EXPECT_EQ(snap.dropped, 0u);  // single-threaded: no slot collisions
  ASSERT_EQ(snap.samples.size(), 8u);
  for (std::size_t i = 0; i < snap.samples.size(); ++i) {
    // The newest 8 survive, oldest-first.
    EXPECT_EQ(snap.samples[i].seq, 92 + i);
    EXPECT_EQ(snap.samples[i].bytes, static_cast<long long>(92 + i));
  }
  s.set_capacity(1024);
}

TEST(Sampler, InternIsStableAndResolvable) {
  obs::Sampler& s = obs::Sampler::instance();
  const std::uint32_t a = s.intern("listless");
  EXPECT_EQ(s.intern("listless"), a);
  EXPECT_EQ(s.name(a), "listless");
  EXPECT_EQ(s.name(0), "");  // id 0 is the empty dimension
  EXPECT_EQ(s.name(1u << 30), "?");
}

TEST(Sampler, SnapshotStaysCoherentDuringConcurrentWrites) {
  ObsSandbox sandbox(/*metrics=*/false);
  obs::Sampler& s = obs::Sampler::instance();
  s.set_capacity(64);
  constexpr int kWriters = 4;
  constexpr int kPerWriter = 10000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> incoherent{0};
  std::thread reader([&] {
    while (!done.load(std::memory_order_acquire)) {
      const obs::MetricsSnapshot snap = s.snapshot();
      EXPECT_LE(snap.samples.size(), snap.capacity);
      std::uint64_t prev_seq = 0;
      bool first = true;
      for (const obs::OpSample& smp : snap.samples) {
        if (!first && smp.seq <= prev_seq) ++incoherent;
        prev_seq = smp.seq;
        first = false;
        // Every writer stamps bytes = rank * 1000 + counter; a torn read
        // that mixed two writers' fields would break the pairing.
        if (smp.bytes / 1000 != static_cast<long long>(smp.rank))
          ++incoherent;
      }
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&s, w] {
      for (int i = 0; i < kPerWriter; ++i) {
        obs::OpSample smp;
        smp.rank = w;
        smp.bytes = static_cast<long long>(w) * 1000 + (i % 1000);
        smp.dur_ns = i;
        s.record(smp);
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_EQ(incoherent.load(), 0u);
  const obs::MetricsSnapshot fin = s.snapshot();
  EXPECT_EQ(fin.produced, static_cast<std::uint64_t>(kWriters * kPerWriter));
  // Drops are possible (a writer lapped the ring mid-write) but counted.
  EXPECT_LE(fin.dropped, fin.produced);
  s.set_capacity(1024);
}

// ---- psrv session-cache sampling ----------------------------------------

// A cache-hit read on a psrv session never reaches the wire, so the
// engine-side observe_op path never sees it — the session itself must
// stamp the sample, *including* the backend/net dimensions the adaptive
// policy layer keys its cost model on.  (Regression: these records used
// to land without dims, so snapshot consumers filtering on backend=="psrv"
// silently missed every cached read.)
TEST(Sampler, PsrvCachedReadsCarryBackendAndNetDims) {
  ObsSandbox sandbox(/*metrics=*/false);
  psrv::PoolConfig cfg = iotest::small_pool_config();
  cfg.session_slots = 4;
  cfg.net_name = "tcp-lan";
  auto pool = psrv::ServerPool::create(cfg);
  psrv::SessionConfig sc;
  sc.cache = true;
  auto f = psrv::ServerFile::create(pool, psrv::RequestClass::List, sc);
  const ByteVec data(150, Byte{0x42});
  f->pwrite(0, data);
  ByteVec back(150);
  f->pread(0, back);  // fills the client cache
  f->pread(0, back);  // pure cache hit: no wire traffic
  ASSERT_GT(f->session().cache_stats().hits, 0u);

  obs::Sampler& s = obs::Sampler::instance();
  const obs::MetricsSnapshot snap = s.snapshot();
  const std::uint32_t op_id = s.intern("psrv.cached_read");
  bool found = false;
  for (const obs::OpSample& smp : snap.samples) {
    if (smp.op != op_id) continue;
    found = true;
    EXPECT_EQ(s.name(smp.engine), "psrv-session");
    EXPECT_EQ(s.name(smp.backend), "psrv");
    EXPECT_EQ(s.name(smp.net), "tcp-lan");
    EXPECT_GT(smp.bytes, 0);
    EXPECT_GE(smp.dur_ns, 0);
  }
  EXPECT_TRUE(found) << "cache-hit reads must land in the sampling ring";

  // A mid-run net swap re-interns the net dimension on later hits.
  pool->set_net(sim::CommCostModel{1e-5, 1e8}, "wan-slow");
  f->pread(0, back);
  const obs::MetricsSnapshot snap2 = s.snapshot();
  bool saw_new_net = false;
  for (const obs::OpSample& smp : snap2.samples)
    if (smp.op == op_id && s.name(smp.net) == "wan-slow") saw_new_net = true;
  EXPECT_TRUE(saw_new_net);
}

// ---- critical path ------------------------------------------------------

obs::TraceEvent span(const char* name, int pid, int tid, double ts,
                     double dur, long long win = -1) {
  obs::TraceEvent ev;
  ev.name = name;
  ev.phase = 'X';
  ev.pid = pid;
  ev.tid = tid;
  ev.ts_us = ts;
  ev.dur_us = dur;
  if (win >= 0) ev.args.push_back({"win", win, "", false});
  return ev;
}

TEST(CriticalPath, AttributesWindowsToLimitingComponent) {
  std::vector<obs::TraceEvent> evs;
  // Window 0: io-limited (io_wait 600 of 1000).
  evs.push_back(span("window", 0, 0, 0, 1000, 0));
  evs.push_back(span("io_wait", 0, 0, 10, 600, 0));
  evs.push_back(span("pack", 0, 0, 620, 300, 0));
  // Window 1: pack-limited, with an inline serial pwrite counting as io.
  evs.push_back(span("window", 0, 0, 2000, 1000, 1));
  evs.push_back(span("pack", 0, 0, 2010, 700, 1));
  evs.push_back(span("pwrite", 0, 0, 2720, 200, 1));
  // Worker-track pwrite: hidden behind the wait, never double-counted.
  evs.push_back(span("pwrite", 0, 1, 2100, 900, 1));
  // Exchange outside the windows: reported as context only.
  evs.push_back(span("exchange", 0, 0, 4000, 500));
  // A window-less pack span and an instant event are ignored.
  evs.push_back(span("pack", 0, 0, 5000, 50));
  obs::TraceEvent inst = span("window", 0, 0, 6000, 0, 9);
  inst.phase = 'i';
  evs.push_back(inst);

  const obs::CriticalPathReport r = obs::critical_path(evs);
  EXPECT_EQ(r.windows, 2);
  EXPECT_DOUBLE_EQ(r.window_us, 2000);
  EXPECT_DOUBLE_EQ(r.io_us, 800);     // 600 wait + 200 inline pwrite
  EXPECT_DOUBLE_EQ(r.pack_us, 1000);  // 300 + 700
  EXPECT_DOUBLE_EQ(r.other_us, 200);
  EXPECT_DOUBLE_EQ(r.exchange_us, 500);
  EXPECT_NEAR(r.attributed_frac, 0.9, 1e-9);
  EXPECT_EQ(r.io_limited_windows, 1);
  EXPECT_EQ(r.pack_limited_windows, 1);
  EXPECT_EQ(r.other_limited_windows, 0);
  EXPECT_STREQ(r.limiter(), "pack");
}

TEST(CriticalPath, ClampsOverlongComponents) {
  // Clock jitter can make nested spans sum past the window; the clamp
  // keeps every category non-negative and the total at 100%.
  std::vector<obs::TraceEvent> evs;
  evs.push_back(span("window", 0, 0, 0, 100, 0));
  evs.push_back(span("io_wait", 0, 0, 0, 80, 0));
  evs.push_back(span("pack", 0, 0, 0, 50, 0));
  const obs::CriticalPathReport r = obs::critical_path(evs);
  EXPECT_EQ(r.windows, 1);
  EXPECT_DOUBLE_EQ(r.io_us, 80);
  EXPECT_DOUBLE_EQ(r.pack_us, 20);  // clamped to the remaining budget
  EXPECT_DOUBLE_EQ(r.other_us, 0);
  EXPECT_DOUBLE_EQ(r.attributed_frac, 1.0);
}

TEST(CriticalPath, EmptyTraceYieldsEmptyReport) {
  const obs::CriticalPathReport r = obs::critical_path({});
  EXPECT_EQ(r.windows, 0);
  EXPECT_DOUBLE_EQ(r.attributed_frac, 0.0);
}

}  // namespace
}  // namespace llio
