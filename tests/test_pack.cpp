#include <gtest/gtest.h>

#include <algorithm>

#include "common/timer.hpp"
#include "fotf/pack.hpp"
#include "test_util.hpp"

namespace llio::fotf {
namespace {

using dt::Type;
using testutil::Rng;

TEST(StridedKernels, GatherScatterRoundTrip) {
  for (Off seg : {1, 2, 4, 8, 16, 32, 24}) {
    const Off stride = seg + 5;
    const Off n = 17;
    ByteVec src(to_size(n * stride), Byte{0});
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = Byte{static_cast<unsigned char>(i * 7 + 1)};
    ByteVec dense(to_size(n * seg));
    strided_gather(dense.data(), src.data(), seg, stride, n);
    for (Off i = 0; i < n; ++i)
      for (Off j = 0; j < seg; ++j)
        EXPECT_EQ(dense[to_size(i * seg + j)], src[to_size(i * stride + j)]);
    ByteVec back(src.size(), Byte{0xAA});
    strided_scatter(back.data(), stride, dense.data(), seg, n);
    for (Off i = 0; i < n; ++i)
      for (Off j = 0; j < seg; ++j)
        EXPECT_EQ(back[to_size(i * stride + j)], src[to_size(i * stride + j)]);
  }
}

void expect_pack_matches_reference(const Type& t, Off count, Rng& rng) {
  auto buf = testutil::make_typed_buffer(t, count);
  testutil::fill_typed_data(buf, t, count,
                            static_cast<unsigned>(testutil::rnd(rng, 1, 1000)));
  const ByteVec want = testutil::reference_pack(buf.base(), count, t);
  const Off total = count * t->size();
  ASSERT_EQ(to_off(want.size()), total);

  // Full pack.
  ByteVec got(to_size(total), Byte{0});
  EXPECT_EQ(ff_pack(buf.base(), count, t, 0, got.data(), total), total);
  EXPECT_EQ(got, want) << dt::to_string(t);

  // Chunked pack with random chunk sizes: must equal slices of the full.
  ByteVec chunked(to_size(total), Byte{0});
  Off done = 0;
  while (done < total) {
    const Off n = std::min(total - done, testutil::rnd(rng, 1, 13));
    const Off copied =
        ff_pack(buf.base(), count, t, done, chunked.data() + done, n);
    EXPECT_EQ(copied, n);
    done += n;
  }
  EXPECT_EQ(chunked, want) << dt::to_string(t);

  // Unpack into a fresh buffer reproduces the data bytes.
  auto dst = testutil::make_typed_buffer(t, count, Byte{0x5A});
  done = 0;
  while (done < total) {
    const Off n = std::min(total - done, testutil::rnd(rng, 1, 17));
    EXPECT_EQ(ff_unpack(want.data() + done, n, dst.base(), count, t, done), n);
    done += n;
  }
  const ByteVec repacked = testutil::reference_pack(dst.base(), count, t);
  EXPECT_EQ(repacked, want) << dt::to_string(t);
}

TEST(FfPack, Contiguous) {
  Rng rng(1);
  expect_pack_matches_reference(dt::contiguous(9, dt::int_()), 2, rng);
}

TEST(FfPack, SmallBlockVector) {
  Rng rng(2);
  expect_pack_matches_reference(dt::hvector(16, 1, 16, dt::double_()), 3, rng);
}

TEST(FfPack, OddStrideVector) {
  Rng rng(3);
  expect_pack_matches_reference(dt::hvector(7, 3, 11, dt::byte()), 4, rng);
}

TEST(FfPack, Indexed) {
  Rng rng(4);
  const Off bls[] = {2, 5, 1};
  const Off ds[] = {30, 0, 70};
  expect_pack_matches_reference(dt::hindexed(bls, ds, dt::byte()), 2, rng);
}

TEST(FfPack, StructMixed) {
  Rng rng(5);
  const Off bls[] = {1, 3};
  const Off ds[] = {16, 0};
  const Type kids[] = {dt::hvector(2, 1, 3, dt::byte()), dt::int_()};
  expect_pack_matches_reference(dt::struct_(bls, ds, kids), 3, rng);
}

TEST(FfPack, Subarray3D) {
  Rng rng(6);
  const Off sizes[] = {6, 5, 4};
  const Off subsizes[] = {3, 2, 2};
  const Off starts[] = {1, 2, 1};
  expect_pack_matches_reference(
      dt::subarray(sizes, subsizes, starts, dt::Order::Fortran, dt::double_()),
      2, rng);
}

TEST(FfPack, NegativeOffsetsViaResized) {
  Rng rng(7);
  const Type t = dt::resized(dt::hvector(3, 1, 4, dt::byte()), -4, 16);
  expect_pack_matches_reference(t, 3, rng);
}

TEST(FfPack, PacksizeLargerThanDataClamps) {
  const Type t = dt::contiguous(4, dt::byte());
  auto buf = testutil::make_typed_buffer(t, 1);
  testutil::fill_typed_data(buf, t, 1);
  ByteVec out(64, Byte{0});
  EXPECT_EQ(ff_pack(buf.base(), 1, t, 0, out.data(), 64), 4);
  EXPECT_EQ(ff_pack(buf.base(), 1, t, 2, out.data(), 64), 2);
  EXPECT_EQ(ff_pack(buf.base(), 1, t, 4, out.data(), 64), 0);
}

TEST(FfPack, SkipBeyondEndCopiesNothing) {
  const Type t = dt::double_();
  double v = 1.0;
  Byte out[8];
  EXPECT_EQ(ff_pack(&v, 1, t, 100, out, 8), 0);
}

TEST(FfPack, WindowBiasAddressesSlices) {
  // Pack stream bytes [4, 12) of a vector whose memory slice starting at
  // offset 10 is presented as a window buffer.
  const Type t = dt::hvector(4, 4, 10, dt::byte());  // blocks at 0,10,20,30
  auto buf = testutil::make_typed_buffer(t, 1);
  testutil::fill_typed_data(buf, t, 1);
  const ByteVec all = testutil::reference_pack(buf.base(), 1, t);
  // Window holds memory offsets [10, 24): exactly blocks 1 and the start
  // of block 2 (bytes 20..23).
  ByteVec window(14);
  std::memcpy(window.data(), buf.base() + 10, window.size());
  ByteVec out(8);
  EXPECT_EQ(ff_pack_window(window.data(), 10, 1, t, 4, out.data(), 8), 8);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), all.begin() + 4));
}

TEST(FfUnpack, WindowBiasWritesSlices) {
  const Type t = dt::hvector(4, 4, 10, dt::byte());
  ByteVec window(14, Byte{0});
  ByteVec packed(8);
  for (std::size_t i = 0; i < packed.size(); ++i)
    packed[i] = Byte{static_cast<unsigned char>(i + 1)};
  // Unpack stream bytes [4, 12) into the window of offsets [10, 24).
  EXPECT_EQ(ff_unpack_window(packed.data(), 8, window.data(), 10, 1, t, 4), 8);
  // Block 1 (mem 10..13) gets bytes 1..4, block 2 start (mem 20..23) 5..8.
  for (int j = 0; j < 4; ++j) {
    EXPECT_EQ(window[to_size(Off{j})], packed[to_size(Off{j})]);
    EXPECT_EQ(window[to_size(Off{10 + j})], packed[to_size(Off{4 + j})]);
  }
  for (int j = 4; j < 10; ++j)
    EXPECT_EQ(window[to_size(Off{j})], Byte{0});  // the gap is untouched
}

class PackProperty : public ::testing::TestWithParam<unsigned> {};

TEST_P(PackProperty, RandomTypesMatchReference) {
  Rng rng(GetParam());
  for (int i = 0; i < 40; ++i) {
    const Type t = testutil::random_type(rng, 3);
    if (t->size() == 0) continue;
    expect_pack_matches_reference(t, testutil::rnd(rng, 1, 3), rng);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PackProperty,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST(PackPerf, TimeIndependentOfSkip) {
  // The paper's complexity claim: pack cost is proportional to the bytes
  // moved, independent of skipbytes.  We verify the *work* proxy: packing
  // 1 KiB at the far end of a 64 Mi-element vector succeeds instantly
  // (would take forever with a linear scan per call).
  const Type t = dt::hvector(1 << 26, 1, 16, dt::byte());
  // NOTE: we never allocate the full buffer; pack only touches the last
  // kilobyte of the stream, so give the window variant a biased view.
  const Off skip = (Off{1} << 26) - 1024;
  ByteVec tail(16 * 1024);
  for (std::size_t i = 0; i < tail.size(); ++i)
    tail[i] = Byte{static_cast<unsigned char>(i)};
  const Off bias = skip * 16;  // mem offset of stream byte `skip`
  ByteVec out(1024);
  WallTimer timer;
  EXPECT_EQ(ff_pack_window(tail.data(), bias, 1, t, skip, out.data(), 1024),
            1024);
  EXPECT_LT(timer.seconds(), 0.1);
}

}  // namespace
}  // namespace llio::fotf
