// Tests for the parallel flattening-on-the-fly work: widened / collapsed
// strided kernels, the non-temporal-store path, PackPlan compile+replay,
// navigation edge cases the slicer depends on (zero-extent and LB/UB
// resized types, segment-boundary skipbytes), and the randomized
// "slice-and-concat == whole pack" fuzz across threads x plan settings.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>

#include "fotf/navigate.hpp"
#include "fotf/pack.hpp"
#include "fotf/parallel.hpp"
#include "fotf/plan.hpp"
#include "test_util.hpp"

namespace llio::fotf {
namespace {

using dt::Type;
using testutil::Rng;

// ---------------------------------------------------------------------------
// Strided kernels: widened fixed sizes, seg == stride collapse, NT path.

void expect_gather_scatter(Off seg, Off stride, Off n) {
  ByteVec src(to_size((n - 1) * stride + seg + 8), Byte{0});
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = Byte{static_cast<unsigned char>(i * 131 + 17)};
  ByteVec dense(to_size(n * seg), Byte{0});
  strided_gather(dense.data(), src.data(), seg, stride, n);
  for (Off i = 0; i < n; ++i)
    for (Off j = 0; j < seg; ++j)
      ASSERT_EQ(dense[to_size(i * seg + j)], src[to_size(i * stride + j)])
          << "seg=" << seg << " stride=" << stride << " i=" << i << " j=" << j;
  ByteVec back(src.size(), Byte{0xAA});
  strided_scatter(back.data(), stride, dense.data(), seg, n);
  for (Off i = 0; i < n; ++i)
    for (Off j = 0; j < seg; ++j)
      ASSERT_EQ(back[to_size(i * stride + j)], src[to_size(i * stride + j)]);
}

TEST(StridedKernels, WidenedFixedSizes) {
  for (Off seg : {Off{24}, Off{48}, Off{256}, Off{512}}) {
    expect_gather_scatter(seg, seg + 8, 33);
    expect_gather_scatter(seg, 2 * seg, 7);
  }
}

TEST(StridedKernels, GenericTailOddSizes) {
  for (Off seg : {Off{3}, Off{7}, Off{13}, Off{100}, Off{1000}})
    expect_gather_scatter(seg, seg + 11, 19);
}

TEST(StridedKernels, SegEqualsStrideCollapsesToMemcpy) {
  // seg == stride means the "strided" region is dense: one memcpy.  The
  // collapse must be observationally identical to the per-segment loop.
  for (Off seg : {Off{1}, Off{5}, Off{16}, Off{24}, Off{512}, Off{4097}}) {
    const Off n = 13;
    ByteVec src(to_size(n * seg));
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = Byte{static_cast<unsigned char>(i * 37 + 5)};
    ByteVec dense(to_size(n * seg), Byte{0});
    strided_gather(dense.data(), src.data(), seg, seg, n);
    EXPECT_EQ(dense, src) << "seg=" << seg;
    ByteVec back(src.size(), Byte{0});
    strided_scatter(back.data(), seg, dense.data(), seg, n);
    EXPECT_EQ(back, src) << "seg=" << seg;
  }
}

TEST(StridedKernels, NonTemporalPathMatchesScalar) {
  if (!nt_supported()) GTEST_SKIP() << "no SSE2 streaming stores";
  // Force the NT path for everything, run the 16-byte-multiple widths the
  // dispatcher streams, and compare against the default (cache) path.
  for (Off seg : {Off{64}, Off{128}, Off{256}, Off{512}}) {
    const Off stride = seg + 32;
    const Off n = 64;
    ByteVec src(to_size(n * stride));
    for (std::size_t i = 0; i < src.size(); ++i)
      src[i] = Byte{static_cast<unsigned char>(i * 101 + 3)};
    ByteVec want(to_size(n * seg), Byte{0});
    set_nt_threshold(-1);  // disable: scalar reference
    strided_gather(want.data(), src.data(), seg, stride, n);
    ByteVec got(to_size(n * seg), Byte{0});
    set_nt_threshold(1);  // force streaming stores
    strided_gather(got.data(), src.data(), seg, stride, n);
    set_nt_threshold(0);  // restore auto-detection
    EXPECT_EQ(got, want) << "seg=" << seg;
  }
}

TEST(StridedKernels, DenseCopyNtMatchesMemcpy) {
  if (!nt_supported()) GTEST_SKIP() << "no SSE2 streaming stores";
  ByteVec src(to_size(Off{1} << 16));
  for (std::size_t i = 0; i < src.size(); ++i)
    src[i] = Byte{static_cast<unsigned char>(i * 7 + 1)};
  // Misalign the destination so the scalar head/tail paths run too.
  ByteVec dst(src.size() + 3, Byte{0});
  set_nt_threshold(1);
  dense_copy(dst.data() + 3, src.data(), to_off(src.size()));
  set_nt_threshold(0);
  EXPECT_EQ(std::memcmp(dst.data() + 3, src.data(), src.size()), 0);
}

// ---------------------------------------------------------------------------
// PackPlan: compile + replay equals the reference pack for any skip/n.

void expect_plan_matches_reference(const Type& t, Off count, Rng& rng) {
  const auto plan = PackPlan::compile(t);
  ASSERT_NE(plan, nullptr) << dt::to_string(t);
  EXPECT_EQ(plan->instance_size(), t->size());
  EXPECT_EQ(plan->instance_extent(), t->extent());

  auto buf = testutil::make_typed_buffer(t, count);
  testutil::fill_typed_data(buf, t, count,
                            static_cast<unsigned>(testutil::rnd(rng, 1, 999)));
  const ByteVec want = testutil::reference_pack(buf.base(), count, t);
  const Off total = count * t->size();

  // Whole-stream replay.
  ByteVec got(to_size(total), Byte{0});
  EXPECT_EQ(plan->pack(buf.base(), 0, count, 0, got.data(), total), total);
  EXPECT_EQ(got, want) << dt::to_string(t);

  // Random [skip, skip+n) windows.
  for (int i = 0; i < 16; ++i) {
    const Off skip = testutil::rnd(rng, 0, total);
    const Off n = testutil::rnd(rng, 0, total - skip);
    ByteVec part(to_size(n) + 1, Byte{0x5C});
    EXPECT_EQ(plan->pack(buf.base(), 0, count, skip, part.data(), n), n);
    EXPECT_EQ(std::memcmp(part.data(), want.data() + skip, to_size(n)), 0)
        << dt::to_string(t) << " skip=" << skip << " n=" << n;
    EXPECT_EQ(part[to_size(n)], Byte{0x5C});  // no overrun
  }

  // Replay unpack reproduces the data bytes.
  auto back = testutil::make_typed_buffer(t, count, Byte{0x11});
  EXPECT_EQ(plan->unpack(back.base(), 0, count, 0, want.data(), total), total);
  const ByteVec round = testutil::reference_pack(back.base(), count, t);
  EXPECT_EQ(round, want) << dt::to_string(t);
}

TEST(PackPlan, UniformVectorReplay) {
  Rng rng(42);
  // Natural hvector extent ends after the last block, so instance-to-
  // instance spacing differs from the in-instance stride: not uniform.
  const Type vec = dt::hvector(16, 8, 24, dt::byte());
  const auto vplan = PackPlan::compile(vec);
  ASSERT_NE(vplan, nullptr);
  EXPECT_EQ(vplan->run_count(), 16);
  EXPECT_FALSE(vplan->uniform());
  expect_plan_matches_reference(vec, 5, rng);

  // Pad the extent to a full stride and the wrap delta matches: uniform,
  // replayable as one strided kernel call across instance boundaries.
  const Type t = dt::resized(vec, 0, 16 * 24);
  const auto plan = PackPlan::compile(t);
  ASSERT_NE(plan, nullptr);
  EXPECT_TRUE(plan->uniform());
  EXPECT_EQ(plan->run_count(), 16);
  expect_plan_matches_reference(t, 5, rng);
}

TEST(PackPlan, ContiguousIsSingleRun) {
  const Type t = dt::contiguous(32, dt::double_());
  const auto plan = PackPlan::compile(t);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->run_count(), 1);
  EXPECT_TRUE(plan->uniform());
}

TEST(PackPlan, DeclinesHugeRunTables) {
  std::vector<Off> bls, ds;
  for (Off i = 0; i < 64; ++i) {
    bls.push_back(1);
    ds.push_back(i * 3);
  }
  const Type t = dt::hindexed(bls, ds, dt::byte());  // 64 runs/instance
  EXPECT_EQ(PackPlan::compile(t, /*max_runs=*/32), nullptr);
  EXPECT_NE(PackPlan::compile(t, /*max_runs=*/64), nullptr);
}

TEST(PackPlan, RandomTypesMatchReference) {
  Rng rng(20260807);
  for (int i = 0; i < 40; ++i) {
    const Type t = testutil::random_type(rng, 3);
    if (t->size() <= 0) continue;
    expect_plan_matches_reference(t, testutil::rnd(rng, 1, 4), rng);
  }
}

// ---------------------------------------------------------------------------
// Navigation edge cases the slicer depends on.

TEST(NavEdgeCases, ZeroExtentResizedType) {
  // All instances of a zero-extent type alias the same memory; navigation
  // and pack must still advance through the *stream* correctly.
  const Type t = dt::resized(dt::contiguous(4, dt::byte()), 0, 0);
  ASSERT_EQ(t->extent(), 0);
  ASSERT_EQ(t->size(), 4);
  // Within an instance mem_start tracks the child; across instances the
  // base does not advance (extent 0).
  EXPECT_EQ(mem_start(t, 0), 0);
  EXPECT_EQ(mem_start(t, 3), 3);
  EXPECT_EQ(mem_start(t, 4), 0);
  EXPECT_EQ(mem_start(t, 9), 1);

  const Off count = 3;
  auto buf = testutil::make_typed_buffer(t, count);
  testutil::fill_typed_data(buf, t, count, 7);
  const ByteVec want = testutil::reference_pack(buf.base(), count, t);
  ByteVec got(to_size(count * t->size()), Byte{0});
  EXPECT_EQ(pack_range(t, count, buf.base(), 0, 0, got.data(),
                       count * t->size()),
            count * t->size());
  EXPECT_EQ(got, want);
}

TEST(NavEdgeCases, LbUbResizedType) {
  // Negative LB and padded UB: the typemap starts before the base pointer
  // and instances tile at the resized extent, not the true span.
  const Type inner = dt::hvector(3, 2, 6, dt::byte());
  const Type t = dt::resized(inner, -4, 24);
  ASSERT_EQ(t->extent(), 24);
  Rng rng(11);
  expect_plan_matches_reference(t, 4, rng);

  const Off count = 4;
  auto buf = testutil::make_typed_buffer(t, count);
  testutil::fill_typed_data(buf, t, count, 3);
  const ByteVec want = testutil::reference_pack(buf.base(), count, t);
  const Off total = count * t->size();
  // Every skip, including ones landing exactly on instance boundaries.
  for (Off skip = 0; skip <= total; ++skip) {
    const Off n = std::min<Off>(total - skip, 5);
    ByteVec part(to_size(n), Byte{0});
    EXPECT_EQ(pack_range(t, count, buf.base(), 0, skip, part.data(), n), n);
    EXPECT_EQ(std::memcmp(part.data(), want.data() + skip, to_size(n)), 0)
        << "skip=" << skip;
  }
}

TEST(NavEdgeCases, SegmentBoundarySkips) {
  // skipbytes landing exactly on segment boundaries must resume at the
  // next segment's first byte (the slice handoff convention).
  const Type t = dt::hvector(8, 4, 12, dt::byte());
  const Off count = 3;
  auto buf = testutil::make_typed_buffer(t, count);
  testutil::fill_typed_data(buf, t, count, 19);
  const ByteVec want = testutil::reference_pack(buf.base(), count, t);
  const Off total = count * t->size();
  const auto plan = PackPlan::compile(t);
  ASSERT_NE(plan, nullptr);
  for (Off skip = 0; skip < total; skip += 4) {  // every segment boundary
    for (const Off n : {Off{1}, Off{4}, Off{9}, total - skip}) {
      if (n > total - skip) continue;
      ByteVec a(to_size(n), Byte{0}), b(to_size(n), Byte{0});
      EXPECT_EQ(pack_range(t, count, buf.base(), 0, skip, a.data(), n), n);
      EXPECT_EQ(plan->pack(buf.base(), 0, count, skip, b.data(), n), n);
      EXPECT_EQ(std::memcmp(a.data(), want.data() + skip, to_size(n)), 0)
          << "skip=" << skip << " n=" << n;
      EXPECT_EQ(a, b) << "skip=" << skip << " n=" << n;
    }
  }
}

// ---------------------------------------------------------------------------
// pack_range / unpack_range: slice-and-concat == whole pack, all configs.

PackConfig fuzz_config(int threads, bool use_plan) {
  PackConfig cfg;
  cfg.threads = threads;
  cfg.parallel_min = 1;  // engage slicing as soon as the floor allows
  cfg.use_plan = use_plan;
  return cfg;
}

void expect_range_matches(const Type& t, Off count, const ByteVec& want,
                          const Byte* base, Rng& rng) {
  const Off total = count * t->size();
  const auto compiled = PackPlan::compile(t);
  for (const int threads : {1, 2, 4}) {
    for (const bool use_plan : {false, true}) {
      const PackConfig cfg = fuzz_config(threads, use_plan);
      const PackPlan* plan = use_plan ? compiled.get() : nullptr;
      // Whole pack in one call.
      ByteVec whole(to_size(total), Byte{0});
      RangeStats rs;
      EXPECT_EQ(pack_range(t, count, base, 0, 0, whole.data(), total, cfg,
                           plan, &rs),
                total);
      EXPECT_EQ(whole, want)
          << dt::to_string(t) << " threads=" << threads
          << " plan=" << use_plan;
      if (threads > 1 && will_parallelize(cfg, total)) {
        EXPECT_GT(rs.threads_used, 1);
        EXPECT_GT(rs.slices, 0u);
      }
      // Random slice-and-concat of the same stream.
      ByteVec cat(to_size(total), Byte{0});
      Off done = 0;
      while (done < total) {
        const Off n = std::min(total - done,
                               testutil::rnd(rng, 1, total / 3 + 1));
        EXPECT_EQ(pack_range(t, count, base, 0, done, cat.data() + done, n,
                             cfg, plan),
                  n);
        done += n;
      }
      EXPECT_EQ(cat, want)
          << dt::to_string(t) << " threads=" << threads
          << " plan=" << use_plan;
    }
  }
}

TEST(ParallelPack, DenseWindowAllConfigs) {
  // The collective-window shape: large payload so threads>1 really slices
  // (will_parallelize needs >= 2 x 64 KiB).
  Rng rng(1);
  const Off sblock = 4096;
  const Off nblock = 128;  // 512 KiB of data
  const Type t = dt::hvector(nblock, sblock, 2 * sblock, dt::byte());
  const Off count = 1;
  auto buf = testutil::make_typed_buffer(t, count);
  testutil::fill_typed_data(buf, t, count, 77);
  const ByteVec want = testutil::reference_pack(buf.base(), count, t);
  expect_range_matches(t, count, want, buf.base(), rng);

  // Parallel unpack (monotone, non-overlapping type): round-trip.
  for (const int threads : {1, 2, 4}) {
    const PackConfig cfg = fuzz_config(threads, true);
    auto back = testutil::make_typed_buffer(t, count, Byte{0x33});
    EXPECT_EQ(unpack_range(t, count, back.base(), 0, 0, want.data(),
                           count * t->size(), cfg,
                           PackPlan::compile(t).get()),
              count * t->size());
    EXPECT_EQ(testutil::reference_pack(back.base(), count, t), want)
        << "threads=" << threads;
  }
}

TEST(ParallelPack, FuzzRandomTypes) {
  // Pack is a gather — race-free even for overlapping/non-monotone
  // typemaps — so the pack fuzz draws from the unrestricted generator.
  Rng rng(987654);
  int done = 0;
  while (done < 8) {
    const Type t = testutil::random_type(rng, 3);
    if (t->size() < 8 || t->extent() <= 0 || t->extent() > 512) continue;
    ++done;
    const Off count = (Off{192} << 10) / t->size() + 1;  // ~192 KiB stream
    auto buf = testutil::make_typed_buffer(t, count);
    testutil::fill_typed_data(buf, t, count,
                              static_cast<unsigned>(done) * 31 + 1);
    const ByteVec want = testutil::reference_pack(buf.base(), count, t);
    expect_range_matches(t, count, want, buf.base(), rng);
  }
}

TEST(ParallelPack, FuzzUnpackNavigableTypes) {
  // Unpack is a scatter: parallel slices are only race-free when the
  // typemap never writes a byte twice, which MPI guarantees for fileviews
  // (monotone).  The unpack fuzz therefore draws navigable types.
  Rng rng(555);
  int done = 0;
  while (done < 6) {
    const Type t = testutil::random_navigable_type(rng, 3);
    if (t->size() < 8 || t->extent() > 512) continue;
    ++done;
    const Off count = (Off{192} << 10) / t->size() + 1;
    auto src = testutil::make_typed_buffer(t, count);
    testutil::fill_typed_data(src, t, count,
                              static_cast<unsigned>(done) * 17 + 3);
    const ByteVec stream = testutil::reference_pack(src.base(), count, t);
    const Off total = count * t->size();
    const auto compiled = PackPlan::compile(t);
    for (const int threads : {1, 2, 4}) {
      for (const bool use_plan : {false, true}) {
        const PackConfig cfg = fuzz_config(threads, use_plan);
        const PackPlan* plan = use_plan ? compiled.get() : nullptr;
        auto back = testutil::make_typed_buffer(t, count, Byte{0x44});
        // Unpack in random chunks, then compare via a reference re-pack.
        Off at = 0;
        while (at < total) {
          const Off n =
              std::min(total - at, testutil::rnd(rng, 1, total / 2 + 1));
          EXPECT_EQ(unpack_range(t, count, back.base(), 0, at,
                                 stream.data() + at, n, cfg, plan),
                    n);
          at += n;
        }
        EXPECT_EQ(testutil::reference_pack(back.base(), count, t), stream)
            << dt::to_string(t) << " threads=" << threads
            << " plan=" << use_plan;
      }
    }
  }
}

TEST(ParallelPack, SerialIsByteIdenticalToFfPack) {
  // threads=1 + plan off must be *the same computation* as ff_pack_window:
  // identical bytes for every (skip, n) on a type with holes and padding.
  Rng rng(2026);
  for (int i = 0; i < 12; ++i) {
    const Type t = testutil::random_type(rng, 3);
    if (t->size() <= 0) continue;
    const Off count = testutil::rnd(rng, 1, 5);
    auto buf = testutil::make_typed_buffer(t, count);
    testutil::fill_typed_data(buf, t, count, static_cast<unsigned>(i + 1));
    const Off total = count * t->size();
    const Off skip = testutil::rnd(rng, 0, total);
    const Off n = testutil::rnd(rng, 0, total - skip);
    ByteVec a(to_size(n) + 1, Byte{0x7E}), b(to_size(n) + 1, Byte{0x7E});
    EXPECT_EQ(ff_pack(buf.base(), count, t, skip, a.data(), n), n);
    PackConfig cfg;  // defaults: threads=1, plan on (no plan passed)
    EXPECT_EQ(pack_range(t, count, buf.base(), 0, skip, b.data(), n, cfg),
              n);
    EXPECT_EQ(a, b) << dt::to_string(t) << " skip=" << skip << " n=" << n;
  }
}

TEST(ParallelPack, WillParallelizeThresholds) {
  PackConfig cfg;
  cfg.threads = 4;
  cfg.parallel_min = 1 << 20;
  EXPECT_FALSE(will_parallelize(cfg, (1 << 20) - 1));  // under parallel_min
  EXPECT_TRUE(will_parallelize(cfg, 1 << 20));
  cfg.parallel_min = 1;
  EXPECT_FALSE(will_parallelize(cfg, (Off{128} << 10) - 1));  // < 2 slices
  EXPECT_TRUE(will_parallelize(cfg, Off{128} << 10));
  cfg.threads = 1;
  EXPECT_FALSE(will_parallelize(cfg, Off{1} << 30));  // serial config
}

}  // namespace
}  // namespace llio::fotf
