#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <thread>

#include "common/error.hpp"
#include "pfs/mem_file.hpp"
#include "pfs/posix_file.hpp"
#include "pfs/range_lock.hpp"
#include "pfs/active_buffer_file.hpp"
#include "pfs/striped_file.hpp"
#include "pfs/faulty_file.hpp"
#include "pfs/throttled_file.hpp"

#include "dtype/datatype.hpp"
#include "mpiio/file.hpp"
#include "simmpi/comm.hpp"

namespace llio::pfs {
namespace {

ByteVec pattern_bytes(std::size_t n, unsigned seed = 3) {
  ByteVec v(n);
  for (std::size_t i = 0; i < n; ++i)
    v[i] = Byte{static_cast<unsigned char>((i * 31 + seed) & 0xFF)};
  return v;
}

template <typename MakeFile>
void backend_contract(MakeFile make) {
  auto f = make();
  EXPECT_EQ(f->size(), 0);

  // Write grows the file.
  const ByteVec data = pattern_bytes(100);
  f->pwrite(10, data);
  EXPECT_EQ(f->size(), 110);

  // Read back exactly what was written.
  ByteVec out(100);
  EXPECT_EQ(f->pread(10, out), 100);
  EXPECT_EQ(out, data);

  // Reads past EOF are short.
  ByteVec big(64);
  EXPECT_EQ(f->pread(100, big), 10);
  EXPECT_EQ(f->pread(110, big), 0);
  EXPECT_EQ(f->pread(4000, big), 0);

  // Overwrite in place.
  const ByteVec patch = pattern_bytes(7, 77);
  f->pwrite(42, patch);
  ByteVec check(7);
  EXPECT_EQ(f->pread(42, check), 7);
  EXPECT_EQ(check, patch);
  EXPECT_EQ(f->size(), 110);

  // Resize shrinks and grows.
  f->resize(50);
  EXPECT_EQ(f->size(), 50);
  f->resize(200);
  EXPECT_EQ(f->size(), 200);

  // Stats counted every access.
  const FileStats st = f->stats();
  EXPECT_EQ(st.write_ops, 2u);
  EXPECT_EQ(st.write_bytes, 107u);
  EXPECT_GE(st.read_ops, 4u);

  // Negative offsets rejected.
  EXPECT_THROW(f->pread(-1, out), Error);
  EXPECT_THROW(f->pwrite(-1, data), Error);
}

TEST(MemFile, BackendContract) {
  backend_contract([] { return MemFile::create(); });
}

TEST(PosixFile, BackendContract) {
  const std::string path = ::testing::TempDir() + "/llio_posix_test.bin";
  backend_contract([&] { return PosixFile::open(path, /*truncate=*/true); });
  std::remove(path.c_str());
}

template <typename MakeFile>
void vectored_contract(MakeFile make) {
  auto f = make();
  // Scattered pwritev lands every segment; a whole batch is one op.
  const ByteVec a = pattern_bytes(10, 1);
  const ByteVec b = pattern_bytes(20, 2);
  const ByteVec c = pattern_bytes(5, 3);
  const ConstIoVec w[] = {{0, a}, {30, b}, {100, c}};
  f->pwritev(w);
  EXPECT_EQ(f->size(), 105);
  EXPECT_EQ(f->stats().write_ops, 1u);
  EXPECT_EQ(f->stats().write_bytes, 35u);

  // preadv: written segments come back, the hole reads zero, and the
  // segment crossing EOF is valid bytes + zero fill; the return value
  // counts only bytes actually read.
  ByteVec ra(10), rb(20), hole(10, Byte{0xEE}), tail(15, Byte{0xEE});
  const IoVec r[] = {{0, ra}, {30, rb}, {10, hole}, {95, tail}};
  EXPECT_EQ(f->preadv(r), 10 + 20 + 10 + 10);
  EXPECT_EQ(f->stats().read_ops, 1u);
  EXPECT_EQ(ra, a);
  EXPECT_EQ(rb, b);
  for (Byte x : hole) EXPECT_EQ(x, Byte{0});
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(tail[i], Byte{0});  // hole
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(tail[5 + i], c[i]);
  for (std::size_t i = 10; i < 15; ++i)
    EXPECT_EQ(tail[i], Byte{0});  // past EOF

  // Negative offsets rejected for the whole batch.
  const IoVec bad[] = {{-1, ra}};
  EXPECT_THROW(f->preadv(bad), Error);
}

TEST(MemFile, VectoredContract) {
  vectored_contract([] { return MemFile::create(); });
}

TEST(PosixFile, VectoredContract) {
  const std::string path = ::testing::TempDir() + "/llio_posix_vec_test.bin";
  vectored_contract([&] { return PosixFile::open(path, /*truncate=*/true); });
  std::remove(path.c_str());
}

TEST(StripedFile, VectoredContract) {
  vectored_contract([] {
    std::vector<FilePtr> devs = {MemFile::create(), MemFile::create(),
                                 MemFile::create()};
    return StripedFile::create(std::move(devs), 16);
  });
}

TEST(ThrottledFile, VectoredContract) {
  vectored_contract([] {
    ThrottleConfig cfg;
    cfg.read_bandwidth_bps = 100e6;
    cfg.write_bandwidth_bps = 100e6;
    return ThrottledFile::wrap(MemFile::create(), cfg);
  });
}

TEST(FaultyFile, VectoredContract) {
  vectored_contract([] {
    return FaultyFile::wrap(MemFile::create(), FaultPlan{});
  });
}

TEST(ActiveBufferFile, VectoredContract) {
  vectored_contract([] { return ActiveBufferFile::wrap(MemFile::create()); });
}

TEST(FaultyFile, VectoredOpsTriggerFaults) {
  FaultPlan plan;
  plan.fail_after_writes = 0;
  auto f = FaultyFile::wrap(MemFile::create(), plan);
  const ByteVec d = pattern_bytes(8);
  const ConstIoVec w[] = {{0, d}, {16, d}};
  try {
    f->pwritev(w);
    FAIL() << "expected injected fault";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::Io);
  }
  f->pwritev(w);  // one-shot: the batch now succeeds
  EXPECT_EQ(f->size(), 24);
}

TEST(MemFile, InitialSizeZeroFilled) {
  auto f = MemFile::create(32);
  EXPECT_EQ(f->size(), 32);
  ByteVec out(32, Byte{0xFF});
  EXPECT_EQ(f->pread(0, out), 32);
  for (Byte b : out) EXPECT_EQ(b, Byte{0});
}

TEST(MemFile, ContentsSnapshot) {
  auto f = MemFile::create();
  const ByteVec data = pattern_bytes(16);
  f->pwrite(0, data);
  EXPECT_EQ(f->contents(), data);
}

TEST(MemFile, ConcurrentDisjointWrites) {
  auto f = MemFile::create(64 * 1024);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      const ByteVec data = pattern_bytes(8 * 1024, static_cast<unsigned>(t));
      f->pwrite(t * 8 * 1024, data);
    });
  }
  for (auto& t : threads) t.join();
  for (int t = 0; t < 8; ++t) {
    ByteVec out(8 * 1024);
    EXPECT_EQ(f->pread(t * 8 * 1024, out), 8 * 1024);
    EXPECT_EQ(out, pattern_bytes(8 * 1024, static_cast<unsigned>(t)));
  }
}

TEST(ThrottledFile, DelegatesAndAccountsTime) {
  auto inner = MemFile::create();
  ThrottleConfig cfg;
  cfg.read_bandwidth_bps = 100e6;
  cfg.write_bandwidth_bps = 100e6;
  auto f = ThrottledFile::wrap(inner, cfg);
  const ByteVec data = pattern_bytes(1 << 20);
  f->pwrite(0, data);
  ByteVec out(1 << 20);
  EXPECT_EQ(f->pread(0, out), 1 << 20);
  EXPECT_EQ(out, data);
  // 2 MiB at 100 MB/s is ~21 ms of simulated time.
  EXPECT_GT(f->simulated_time(), 0.015);
  // Inner stats see the traffic too.
  EXPECT_EQ(inner->stats().write_bytes, std::uint64_t{1} << 20);
}

TEST(ThrottledFile, RejectsBadConfig) {
  ThrottleConfig cfg;
  cfg.read_bandwidth_bps = 0;
  EXPECT_THROW(ThrottledFile::wrap(MemFile::create(), cfg), Error);
  EXPECT_THROW(ThrottledFile::wrap(nullptr, ThrottleConfig{}), Error);
}

TEST(ActiveBufferFile, WriteBehindFlushesInOrder) {
  auto inner = MemFile::create();
  auto f = ActiveBufferFile::wrap(inner, 1 << 20);
  const ByteVec a = pattern_bytes(64, 1);
  const ByteVec b = pattern_bytes(64, 2);
  f->pwrite(0, a);
  f->pwrite(32, b);  // overlaps; must apply after a
  f->drain();
  ByteVec out(96);
  EXPECT_EQ(inner->pread(0, out), 96);
  EXPECT_TRUE(std::equal(a.begin(), a.begin() + 32, out.begin()));
  EXPECT_TRUE(std::equal(b.begin(), b.end(), out.begin() + 32));
}

TEST(ActiveBufferFile, ReadsSeeStagedWrites) {
  auto f = ActiveBufferFile::wrap(MemFile::create());
  const ByteVec data = pattern_bytes(256);
  f->pwrite(0, data);
  // No explicit drain: the read must still observe the write.
  ByteVec out(256);
  EXPECT_EQ(f->pread(0, out), 256);
  EXPECT_EQ(out, data);
}

TEST(ActiveBufferFile, SizeIncludesStagedTail) {
  auto f = ActiveBufferFile::wrap(MemFile::create());
  f->pwrite(1000, pattern_bytes(24));
  EXPECT_EQ(f->size(), 1024);  // even before the flush completes
  f->drain();
  EXPECT_EQ(f->size(), 1024);
}

TEST(ActiveBufferFile, BackpressureBoundsStage) {
  auto inner = MemFile::create();
  ThrottleConfig cfg;
  cfg.write_bandwidth_bps = 50e6;
  auto slow = ThrottledFile::wrap(inner, cfg);
  auto f = ActiveBufferFile::wrap(slow, /*max_pending_bytes=*/4096);
  const ByteVec chunk = pattern_bytes(1024);
  for (int i = 0; i < 32; ++i) f->pwrite(i * 1024, chunk);
  f->drain();
  EXPECT_LE(f->peak_pending_bytes(), 4096 + 1024);
  EXPECT_EQ(inner->size(), 32 * 1024);
}

TEST(ActiveBufferFile, FlushErrorsSurfaceOnNextOperation) {
  FaultPlan plan;
  plan.fail_after_writes = 0;
  auto faulty = FaultyFile::wrap(MemFile::create(), plan);
  auto f = ActiveBufferFile::wrap(faulty);
  f->pwrite(0, pattern_bytes(16));  // flush will fail asynchronously
  EXPECT_THROW(f->drain(), Error);
}

TEST(ActiveBufferFile, WorksUnderTheFileApi) {
  auto inner = MemFile::create();
  auto f = ActiveBufferFile::wrap(inner);
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    mpiio::File file = mpiio::File::open(comm, f, mpiio::Options{});
    const ByteVec data = pattern_bytes(128, 5u + (unsigned)comm.rank());
    file.write_at(comm.rank() * 128, data.data(), 128, dt::byte());
    file.sync();
    ByteVec back(128);
    file.read_at(comm.rank() * 128, back.data(), 128, dt::byte());
    EXPECT_EQ(back, data);
  });
  EXPECT_EQ(inner->size(), 256);
}

TEST(StripedFile, BackendContract) {
  backend_contract([] {
    std::vector<FilePtr> devs = {MemFile::create(), MemFile::create(),
                                 MemFile::create()};
    return StripedFile::create(std::move(devs), 16);
  });
}

TEST(StripedFile, StripesLandOnTheRightDevices) {
  auto d0 = MemFile::create();
  auto d1 = MemFile::create();
  auto f = StripedFile::create({d0, d1}, 8);
  const ByteVec data = pattern_bytes(32);  // 4 stripes: d0,d1,d0,d1
  f->pwrite(0, data);
  EXPECT_EQ(d0->size(), 16);
  EXPECT_EQ(d1->size(), 16);
  // Device 0 holds logical stripes 0 and 2.
  const ByteVec c0 = d0->contents();
  EXPECT_TRUE(std::equal(data.begin(), data.begin() + 8, c0.begin()));
  EXPECT_TRUE(std::equal(data.begin() + 16, data.begin() + 24,
                         c0.begin() + 8));
  // Device 1 holds logical stripes 1 and 3.
  const ByteVec c1 = d1->contents();
  EXPECT_TRUE(std::equal(data.begin() + 8, data.begin() + 16, c1.begin()));
  EXPECT_TRUE(std::equal(data.begin() + 24, data.end(), c1.begin() + 8));
}

TEST(StripedFile, UnalignedAccessSpansStripes) {
  auto f = StripedFile::create({MemFile::create(), MemFile::create()}, 8);
  f->pwrite(0, pattern_bytes(64, 9));
  // Read an awkward window crossing three stripe boundaries.
  ByteVec out(21);
  EXPECT_EQ(f->pread(5, out), 21);
  const ByteVec all = pattern_bytes(64, 9);
  EXPECT_TRUE(std::equal(out.begin(), out.end(), all.begin() + 5));
  // Patch across a boundary and read back.
  const ByteVec patch = pattern_bytes(10, 42);
  f->pwrite(12, patch);
  ByteVec back(10);
  EXPECT_EQ(f->pread(12, back), 10);
  EXPECT_EQ(back, patch);
}

TEST(StripedFile, SizeTracksPartialTailStripe) {
  auto f = StripedFile::create(
      {MemFile::create(), MemFile::create(), MemFile::create()}, 10);
  EXPECT_EQ(f->size(), 0);
  f->pwrite(0, pattern_bytes(25));  // 2.5 stripes
  EXPECT_EQ(f->size(), 25);
  f->pwrite(37, pattern_bytes(3));  // sparse tail in stripe 4 (device 0)
  EXPECT_EQ(f->size(), 40);
  f->resize(12);
  EXPECT_EQ(f->size(), 12);
}

TEST(StripedFile, RejectsBadConfig) {
  EXPECT_THROW(StripedFile::create({}, 8), Error);
  EXPECT_THROW(StripedFile::create({MemFile::create()}, 0), Error);
  EXPECT_THROW(StripedFile::create({nullptr}, 8), Error);
}

TEST(StripedFile, WorksUnderCollectiveIo) {
  std::vector<FilePtr> devs = {MemFile::create(), MemFile::create(),
                               MemFile::create(), MemFile::create()};
  auto f = StripedFile::create(devs, 64);
  sim::Runtime::run(4, [&](sim::Comm& comm) {
    mpiio::File file = mpiio::File::open(comm, f, mpiio::Options{});
    const ByteVec data = pattern_bytes(256, 11u + (unsigned)comm.rank());
    file.write_at_all(comm.rank() * 256, data.data(), 256, dt::byte());
    ByteVec back(256);
    file.read_at_all(comm.rank() * 256, back.data(), 256, dt::byte());
    EXPECT_EQ(back, data);
  });
  EXPECT_EQ(f->size(), 1024);
}

TEST(RangeLock, NonOverlappingRangesDoNotBlock) {
  RangeLock rl;
  rl.lock(0, 10);
  rl.lock(10, 20);  // adjacent is fine
  rl.unlock(0, 10);
  rl.unlock(10, 20);
}

TEST(RangeLock, UnlockOfUnheldRangeThrows) {
  RangeLock rl;
  rl.lock(0, 10);
  EXPECT_THROW(rl.unlock(5, 10), Error);
  rl.unlock(0, 10);
}

TEST(RangeLock, OverlappingWriterExcluded) {
  RangeLock rl;
  std::atomic<bool> second_acquired{false};
  rl.lock(0, 100);
  std::thread other([&] {
    rl.lock(50, 150);  // blocks until main unlocks
    second_acquired = true;
    rl.unlock(50, 150);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(second_acquired.load());
  rl.unlock(0, 100);
  other.join();
  EXPECT_TRUE(second_acquired.load());
}

TEST(RangeLock, ScopedGuardReleases) {
  RangeLock rl;
  {
    ScopedRangeLock guard(rl, 0, 8);
  }
  rl.lock(0, 8);  // would deadlock if the guard leaked
  rl.unlock(0, 8);
}

TEST(RangeLock, StressManyThreads) {
  RangeLock rl;
  std::vector<int> cells(16, 0);
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 200; ++i) {
        const Off lo = (t + i) % 16;
        ScopedRangeLock guard(rl, lo, lo + 1);
        ++cells[to_size(lo)];  // protected by the range lock
      }
    });
  }
  for (auto& t : threads) t.join();
  int total = 0;
  for (int v : cells) total += v;
  EXPECT_EQ(total, 8 * 200);
}

}  // namespace
}  // namespace llio::pfs
