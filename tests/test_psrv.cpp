// The parallel file-server subsystem (src/psrv): shard partitioning,
// all three request classes (contig / list / view), flow control, the
// fileview cache with eviction + UnknownView retry, fault propagation,
// decorator composition, and the wire-volume claim that makes view I/O
// worthwhile — the serialized tree replaces the ol-list on the wire.
#include <gtest/gtest.h>

#include <thread>

#include "io_test_util.hpp"
#include "mpiio/info.hpp"
#include "pfs/faulty_file.hpp"
#include "pfs/throttled_file.hpp"
#include "pfs/traced_file.hpp"
#include "simmpi/net_model.hpp"

namespace llio::psrv {
namespace {

using iotest::small_pool_config;

std::shared_ptr<ServerFile> make_file(RequestClass cls,
                                      PoolConfig cfg = small_pool_config()) {
  return ServerFile::create(ServerPool::create(std::move(cfg)), cls);
}

constexpr RequestClass kClasses[] = {RequestClass::Contig, RequestClass::List,
                                     RequestClass::View};

TEST(PsrvPool, DomainsPartitionAndLastIsOpenEnded) {
  auto pool = ServerPool::create(small_pool_config());
  const auto& doms = pool->domains();
  ASSERT_EQ(doms.size(), 3u);
  EXPECT_EQ(doms[0].lo, 0);
  EXPECT_EQ(doms[0].hi, 64);
  EXPECT_EQ(doms[1].lo, 64);
  EXPECT_EQ(doms[1].hi, 128);
  EXPECT_EQ(doms[2].lo, 128);
  EXPECT_EQ(doms[2].hi, ServerPool::kOpenEnd);
  EXPECT_EQ(pool->owner(0), 0);
  EXPECT_EQ(pool->owner(63), 0);
  EXPECT_EQ(pool->owner(64), 1);
  EXPECT_EQ(pool->owner(191), 2);
  // Past the configured capacity still lands on the last server.
  EXPECT_EQ(pool->owner(1 << 20), 2);
  EXPECT_THROW(pool->owner(-1), Error);
}

TEST(PsrvPool, FewerStripesThanServersLeavesTrailingServersEmpty) {
  PoolConfig cfg = small_pool_config();
  cfg.nservers = 4;
  cfg.capacity = 2 * cfg.stripe;  // only 2 stripes to hand out
  auto f = make_file(RequestClass::Contig, cfg);
  const ByteVec data = iotest::payload_stream(1, 300);
  f->pwrite(0, data);
  ByteVec back(300);
  f->pread(0, back);
  EXPECT_EQ(back, data);
}

TEST(PsrvBackend, RoundTripsAcrossShardBoundaries) {
  for (RequestClass cls : kClasses) {
    auto f = make_file(cls);
    auto ref = pfs::MemFile::create();
    // One write spanning all three shards (including the open end).
    const ByteVec data = iotest::payload_stream(7, 300);
    f->pwrite(10, data);
    ref->pwrite(10, data);
    // Scattered vectored accesses, some shard-straddling, some adjacent
    // (exercises client-side coalescing and server-side batching).
    ByteVec small = iotest::payload_stream(9, 40);
    const pfs::ConstIoVec wv[] = {
        {60, ConstByteSpan(small.data(), 10)},       // straddles 64
        {70, ConstByteSpan(small.data() + 10, 10)},  // adjacent to previous
        {126, ConstByteSpan(small.data() + 20, 10)}, // straddles 128
        {400, ConstByteSpan(small.data() + 30, 10)}, // open-ended shard
    };
    f->pwritev(wv);
    ref->pwritev(wv);
    EXPECT_EQ(f->size(), ref->size()) << request_class_name(cls);

    ByteVec a(to_size(f->size())), b(to_size(ref->size()));
    EXPECT_EQ(f->pread(0, a), ref->pread(0, b)) << request_class_name(cls);
    EXPECT_EQ(a, b) << request_class_name(cls);

    ByteVec ra(25), rb(25), rc(7), rd(7);
    const pfs::IoVec rv_f[] = {{55, ByteSpan(ra)}, {120, ByteSpan(rc)}};
    const pfs::IoVec rv_r[] = {{55, ByteSpan(rb)}, {120, ByteSpan(rd)}};
    EXPECT_EQ(f->preadv(rv_f), ref->preadv(rv_r)) << request_class_name(cls);
    EXPECT_EQ(ra, rb) << request_class_name(cls);
    EXPECT_EQ(rc, rd) << request_class_name(cls);
  }
}

TEST(PsrvBackend, ReadsPastEofZeroFillAndReturnShort) {
  for (RequestClass cls : kClasses) {
    auto f = make_file(cls);
    f->pwrite(0, iotest::payload_stream(3, 100));
    ByteVec out(150, Byte{0xEE});
    EXPECT_EQ(f->pread(40, out), 60) << request_class_name(cls);
    for (std::size_t i = 60; i < out.size(); ++i)
      ASSERT_EQ(out[i], Byte{0}) << request_class_name(cls) << " @" << i;
    EXPECT_EQ(f->pread(200, out), 0) << request_class_name(cls);
  }
}

TEST(PsrvBackend, ResizeShrinksAndGrowsLikeMemFile) {
  for (RequestClass cls : kClasses) {
    auto f = make_file(cls);
    auto ref = pfs::MemFile::create();
    const ByteVec data = iotest::payload_stream(5, 250);
    f->pwrite(0, data);
    ref->pwrite(0, data);
    for (Off size : {Off{90}, Off{170}, Off{0}, Off{40}}) {
      f->resize(size);
      ref->resize(size);
      ASSERT_EQ(f->size(), ref->size()) << request_class_name(cls);
      ByteVec a(200), b(200);
      ASSERT_EQ(f->pread(0, a), ref->pread(0, b)) << request_class_name(cls);
      ASSERT_EQ(a, b) << request_class_name(cls) << " after resize " << size;
    }
    f->sync();  // must not throw
  }
}

TEST(PsrvBackend, EnginesProduceTheExpectedImage) {
  // Both engines, independent and collective, over each request class:
  // the final image must equal the reference computed from the flatten.
  const int P = 3;
  const Off nblock = 4, sblock = 8, nbytes = 2 * nblock * sblock;
  const auto ft_of = [&](int r) {
    return iotest::noncontig_filetype(nblock, sblock, P, r);
  };
  ByteVec want = iotest::expected_image(P, ft_of, /*disp=*/16, 0, nbytes);
  for (RequestClass cls : kClasses) {
    for (mpiio::Method m :
         {mpiio::Method::ListBased, mpiio::Method::Listless}) {
      for (bool collective : {false, true}) {
        auto f = make_file(cls);
        sim::Runtime::run(P, [&](sim::Comm& comm) {
          mpiio::Options o;
          o.method = m;
          o.file_buffer_size = 128;
          o.pack_buffer_size = 64;
          mpiio::File mf = mpiio::File::open(comm, f, o);
          mf.set_view(16, dt::byte(), ft_of(comm.rank()));
          const ByteVec stream = iotest::payload_stream(comm.rank(), nbytes);
          if (collective)
            mf.write_at_all(0, stream.data(), nbytes, dt::byte());
          else
            mf.write_at(0, stream.data(), nbytes, dt::byte());
          comm.barrier();
          ByteVec back(to_size(nbytes), Byte{0});
          if (collective)
            mf.read_at_all(0, back.data(), nbytes, dt::byte());
          else
            mf.read_at(0, back.data(), nbytes, dt::byte());
          EXPECT_EQ(back, stream);
        });
        ByteVec img = iotest::backend_image(f);
        ByteVec ref = want;
        iotest::pad_to_common(img, ref);
        EXPECT_EQ(img, ref)
            << request_class_name(cls) << " " << mpiio::method_name(m)
            << (collective ? " collective" : " independent");
      }
    }
  }
}

TEST(PsrvBackend, ServerStatsAttributeRequestClasses) {
  PoolConfig cfg = small_pool_config();
  auto pool = ServerPool::create(cfg);
  auto contig = ServerFile::create(pool, RequestClass::Contig);
  auto list = ServerFile::create(pool, RequestClass::List);
  auto view = ServerFile::create(pool, RequestClass::View);

  contig->pwrite(0, iotest::payload_stream(1, 100));
  ServerStats t = pool->total_server_stats();
  EXPECT_GT(t.contig_ops, 0u);
  EXPECT_EQ(t.list_ops, 0u);
  EXPECT_EQ(t.view_ops, 0u);
  EXPECT_EQ(t.contig_bytes, 100u);

  // Two file-adjacent extents on one server: coalesced client-side into
  // one wire extent.
  ByteVec d = iotest::payload_stream(2, 20);
  const pfs::ConstIoVec wv[] = {{0, ConstByteSpan(d.data(), 10)},
                                {10, ConstByteSpan(d.data() + 10, 10)}};
  list->pwritev(wv);
  t = pool->total_server_stats();
  EXPECT_GT(t.list_ops, 0u);
  EXPECT_EQ(t.list_extents, 1u);
  EXPECT_EQ(t.list_bytes, 20u);

  const dt::Type ft = iotest::noncontig_filetype(4, 8, 2, 0);
  const ByteVec stream = iotest::payload_stream(3, 32);
  view->view_write(ft, 0, 0, stream);
  t = pool->total_server_stats();
  EXPECT_GT(t.view_ops, 0u);
  EXPECT_GT(t.view_segments, 0u);
  EXPECT_GT(t.view_installs, 0u);
  EXPECT_EQ(t.view_bytes, 32u);
}

TEST(PsrvBackend, ViewWireBytesBeatListWireBytesOnSparsePattern) {
  // The paper's motivating pattern: many tiny (8-byte) blocks.  The list
  // class ships 16 bytes of ol-list per block every time; the view class
  // ships the fixed-size tree once per server, then only (disp, range)
  // scalars.  Wire volume must be strictly smaller for view I/O.
  const Off nblock = 64, sblock = 8;
  const dt::Type ft = iotest::noncontig_filetype(nblock, sblock, 2, 0);
  const Off nbytes = nblock * sblock;
  const ByteVec stream = iotest::payload_stream(11, nbytes);

  auto wire_bytes_of = [&](RequestClass cls) {
    PoolConfig cfg = small_pool_config();
    cfg.stripe = 256;
    cfg.capacity = 3 * 256;
    auto f = make_file(cls, cfg);
    f->pool()->reset_wire_stats();
    ByteVec back(to_size(nbytes));
    if (cls == RequestClass::View) {
      // Twice, so the one-off tree install is amortized like a real
      // repeated access pattern; list pays the ol-list both times.
      f->view_write(ft, 0, 0, stream);
      f->view_write(ft, 0, 0, stream);
      f->view_read(ft, 0, 0, back);
    } else {
      // The engine-level equivalent: one vectored access per block run.
      std::vector<pfs::ConstIoVec> wv;
      for (Off i = 0; i < nblock; ++i)
        wv.push_back({i * 2 * sblock,
                      ConstByteSpan(stream.data() + i * sblock,
                                    to_size(sblock))});
      f->pwritev(wv);
      f->pwritev(wv);
      std::vector<pfs::IoVec> rv;
      for (Off i = 0; i < nblock; ++i)
        rv.push_back({i * 2 * sblock,
                      ByteSpan(back.data() + i * sblock, to_size(sblock))});
      f->preadv(rv);
    }
    EXPECT_EQ(back, stream) << request_class_name(cls);
    return f->pool()->wire_stats().total_bytes();
  };

  const std::uint64_t list_bytes = wire_bytes_of(RequestClass::List);
  const std::uint64_t view_bytes = wire_bytes_of(RequestClass::View);
  EXPECT_LT(view_bytes, list_bytes);
}

TEST(PsrvBackend, QueueDepthIsBounded) {
  PoolConfig cfg = small_pool_config();
  cfg.queue_depth = 2;
  cfg.client_slots = 8;
  auto pool = ServerPool::create(cfg);
  auto f = ServerFile::create(pool, RequestClass::Contig);
  // 8 concurrent writers, each splitting into many per-shard round trips.
  std::vector<std::thread> writers;
  for (int w = 0; w < 8; ++w)
    writers.emplace_back([&, w] {
      for (int i = 0; i < 4; ++i)
        f->pwrite(w * 400, iotest::payload_stream(w, 384));
    });
  for (auto& t : writers) t.join();
  for (int s = 0; s < pool->nservers(); ++s)
    EXPECT_LE(pool->server_stats(s).max_queue_depth, 2u) << "server " << s;
  EXPECT_GT(pool->total_server_stats().requests, 0u);
}

TEST(PsrvBackend, ViewCacheEvictionTriggersUnknownViewRetry) {
  PoolConfig cfg = small_pool_config();
  cfg.view_cache_cap = 1;
  auto f = make_file(RequestClass::View, cfg);
  const dt::Type fta = iotest::noncontig_filetype(4, 8, 2, 0);
  const dt::Type ftb = iotest::noncontig_filetype(2, 16, 2, 0);
  const ByteVec sa = iotest::payload_stream(1, 32);
  const ByteVec sb = iotest::payload_stream(2, 32);
  // Alternating views with a one-entry cache: every switch evicts, and
  // the client's "already installed" belief goes stale — the UnknownView
  // retry must make this fully transparent.
  for (int round = 0; round < 3; ++round) {
    f->view_write(fta, 0, 0, sa);
    f->view_write(ftb, 0, 0, sb);
  }
  ByteVec ba(32), bb(32);
  f->view_read(fta, 0, 0, ba);
  f->view_read(ftb, 0, 0, bb);
  // Reference: replay on MemFile through the same public contract.
  auto ref = pfs::MemFile::create();
  auto rf = make_file(RequestClass::View);  // fresh, big cache
  for (int round = 0; round < 3; ++round) {
    rf->view_write(fta, 0, 0, sa);
    rf->view_write(ftb, 0, 0, sb);
  }
  ByteVec ra(32), rb(32);
  rf->view_read(fta, 0, 0, ra);
  rf->view_read(ftb, 0, 0, rb);
  EXPECT_EQ(ba, ra);
  EXPECT_EQ(bb, rb);
  const ServerStats t = f->pool()->total_server_stats();
  EXPECT_GT(t.view_evictions, 0u);
  EXPECT_GT(t.view_misses, 0u);
}

TEST(PsrvBackend, ShardFaultsSurfaceAsIoErrors) {
  PoolConfig cfg = small_pool_config();
  cfg.make_shard = [](int server) -> pfs::FilePtr {
    pfs::FilePtr mem = pfs::MemFile::create();
    if (server != 1) return mem;
    pfs::FaultPlan plan;
    plan.fail_after_writes = 0;  // server 1: first write fails
    return pfs::FaultyFile::wrap(std::move(mem), plan);
  };
  for (RequestClass cls : kClasses) {
    auto f = make_file(cls, cfg);
    // Shard 0 only: fine.
    f->pwrite(0, iotest::payload_stream(1, 32));
    // Spans shard 1: the server's Errc::Io must reach this thread.
    try {
      f->pwrite(32, iotest::payload_stream(1, 64));
      FAIL() << "expected Errc::Io for " << request_class_name(cls);
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), Errc::Io) << request_class_name(cls);
    }
    // The pool survives the fault: shard 0 still serves.
    ByteVec back(32);
    EXPECT_EQ(f->pread(0, back), 32) << request_class_name(cls);
  }
}

TEST(PsrvBackend, ViewErrorsSurfaceThroughViewIo) {
  PoolConfig cfg = small_pool_config();
  cfg.make_shard = [](int) -> pfs::FilePtr {
    pfs::FaultPlan plan;
    plan.fail_after_writes = 0;
    return pfs::FaultyFile::wrap(pfs::MemFile::create(), plan);
  };
  auto f = make_file(RequestClass::View, cfg);
  const dt::Type ft = iotest::noncontig_filetype(4, 8, 1, 0);
  try {
    f->view_write(ft, 0, 0, iotest::payload_stream(1, 32));
    FAIL() << "expected Errc::Io";
  } catch (const Error& e) {
    EXPECT_EQ(e.code(), Errc::Io);
  }
}

TEST(PsrvDecorators, ThrottledAndFaultyMaskViewIoTracedForwardsIt) {
  auto f = make_file(RequestClass::View);
  ASSERT_NE(f->view_io(), nullptr);
  // Cost/fault decorators must see every byte: capability masked, the
  // engines fall back to pread/pwrite through the wrapper.
  auto throttled = pfs::ThrottledFile::wrap(f, {});
  EXPECT_EQ(throttled->view_io(), nullptr);
  auto faulty = pfs::FaultyFile::wrap(f, {});
  EXPECT_EQ(faulty->view_io(), nullptr);
  // The tracer is observational: it forwards the capability (wrapped, so
  // accesses are still recorded) ...
  auto traced = pfs::TracedFile::wrap(f);
  EXPECT_NE(traced->view_io(), nullptr);
  // ... but only when the inner backend has it.
  auto traced_mem = pfs::TracedFile::wrap(pfs::MemFile::create());
  EXPECT_EQ(traced_mem->view_io(), nullptr);
  // And Traced(Throttled(view backend)) is masked transitively.
  auto traced_throttled = pfs::TracedFile::wrap(throttled);
  EXPECT_EQ(traced_throttled->view_io(), nullptr);
}

TEST(PsrvDecorators, TracedViewIoCountsBytesExactlyOnce) {
  auto f = make_file(RequestClass::View);
  auto traced = pfs::TracedFile::wrap(f);
  const dt::Type ft = iotest::noncontig_filetype(4, 8, 1, 0);
  const ByteVec stream = iotest::payload_stream(4, 32);
  pfs::ViewIo* vio = traced->view_io();
  ASSERT_NE(vio, nullptr);
  EXPECT_EQ(vio->view_write(ft, 0, 0, stream), 32);
  ByteVec back(32);
  EXPECT_EQ(vio->view_read(ft, 0, 0, back), 32);
  EXPECT_EQ(back, stream);
  // Each layer counts its own stats once: payload bytes, not payload
  // times the number of layers.
  const pfs::FileStats outer = traced->stats();
  EXPECT_EQ(outer.write_bytes, 32u);
  EXPECT_EQ(outer.read_bytes, 32u);
  EXPECT_EQ(outer.write_ops, 1u);
  EXPECT_EQ(outer.read_ops, 1u);
  const pfs::FileStats inner = f->stats();
  EXPECT_EQ(inner.write_bytes, 32u);
  EXPECT_EQ(inner.read_bytes, 32u);
}

TEST(PsrvDecorators, EngineFallsBackThroughMaskingDecorators) {
  // A view-class backend behind FaultyFile: the engine must not use
  // ViewIo, so all bytes pass the wrapper and its armed fault fires.
  auto f = make_file(RequestClass::View);
  pfs::FaultPlan plan;
  plan.fail_after_writes = 0;
  auto faulty = pfs::FaultyFile::wrap(f, plan);
  const dt::Type ft = iotest::noncontig_filetype(4, 8, 1, 0);
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    mpiio::Options o;
    o.ds_write = mpiio::Sieving::Never;
    mpiio::File mf = mpiio::File::open(comm, faulty, o);
    mf.set_view(0, dt::byte(), ft);
    const ByteVec stream = iotest::payload_stream(1, 32);
    try {
      mf.write_at(0, stream.data(), 32, dt::byte());
      ADD_FAILURE() << "fault did not fire: bytes bypassed the decorator";
    } catch (const Error& e) {
      EXPECT_EQ(e.code(), Errc::Io);
    }
  });
}

TEST(PsrvHints, OptionsSelectServersQueueDepthRequestClassAndNet) {
  mpiio::Info info;
  info.set("llio_psrv_servers", "5");
  info.set("llio_psrv_queue_depth", "3");
  info.set("llio_psrv_request", "view");
  info.set("llio_net_model", "mid");
  const mpiio::Options o = mpiio::apply_info(info, {});
  EXPECT_EQ(o.psrv_servers, 5);
  EXPECT_EQ(o.psrv_queue_depth, 3);
  EXPECT_EQ(o.psrv_request, "view");
  EXPECT_EQ(o.net_model, "mid");

  auto f = make_server_file(o);
  EXPECT_EQ(f->pool()->nservers(), 5);
  EXPECT_EQ(f->pool()->config().queue_depth, 3);
  EXPECT_EQ(f->request_class(), RequestClass::View);
  EXPECT_NE(f->view_io(), nullptr);
  const sim::CommCostModel mid = sim::named_cost_model("mid");
  EXPECT_EQ(f->pool()->config().net.latency_s, mid.latency_s);
  EXPECT_EQ(f->pool()->config().net.bandwidth_bps, mid.bandwidth_bps);

  // Round trip through options_to_info.
  const mpiio::Info out = mpiio::options_to_info(o);
  const mpiio::Options o2 = mpiio::apply_info(out, {});
  EXPECT_EQ(o2.psrv_servers, 5);
  EXPECT_EQ(o2.psrv_queue_depth, 3);
  EXPECT_EQ(o2.psrv_request, "view");
  EXPECT_EQ(o2.net_model, "mid");

  mpiio::Info bad;
  bad.set("llio_psrv_request", "bulk");
  EXPECT_THROW(mpiio::apply_info(bad, {}), Error);
  mpiio::Info bad2;
  bad2.set("llio_psrv_queue_depth", "0");
  EXPECT_THROW(mpiio::apply_info(bad2, {}), Error);
  EXPECT_THROW(request_class_from_name("bulk"), Error);
}

TEST(PsrvHints, NamedCostModels) {
  EXPECT_EQ(sim::named_cost_model("shared-mem").latency_s, 0.0);
  EXPECT_GT(sim::named_cost_model("fast").bandwidth_bps,
            sim::named_cost_model("mid").bandwidth_bps);
  EXPECT_GT(sim::named_cost_model("mid").bandwidth_bps,
            sim::named_cost_model("slow").bandwidth_bps);
  EXPECT_LT(sim::named_cost_model("fast").latency_s,
            sim::named_cost_model("slow").latency_s);
  const sim::CommCostModel custom = sim::named_cost_model("2.5e-6:5e9");
  EXPECT_DOUBLE_EQ(custom.latency_s, 2.5e-6);
  EXPECT_DOUBLE_EQ(custom.bandwidth_bps, 5e9);
  EXPECT_THROW(sim::named_cost_model("warp"), Error);
  EXPECT_THROW(sim::named_cost_model("1e-6:"), Error);
  EXPECT_THROW(sim::named_cost_model(""), Error);
  EXPECT_EQ(sim::standard_cost_models().size(), 4u);
}

TEST(PsrvConcurrency, ManyClientsOneSharedPool) {
  // Rank-threads from two separate runtimes plus raw threads all hammer
  // one pool through separate handles — disjoint ranges, then verify.
  PoolConfig cfg = small_pool_config();
  cfg.client_slots = 4;  // fewer slots than clients: checkout contention
  auto pool = ServerPool::create(cfg);
  constexpr int kClients = 6;
  constexpr Off kSpan = 200;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      auto f = ServerFile::create(
          pool, kClasses[static_cast<std::size_t>(c) % 3]);
      for (int round = 0; round < 3; ++round)
        f->pwrite(c * kSpan, iotest::payload_stream(c, kSpan));
    });
  for (auto& t : clients) t.join();
  auto reader = ServerFile::create(pool, RequestClass::List);
  for (int c = 0; c < kClients; ++c) {
    ByteVec back(to_size(kSpan));
    reader->pread(c * kSpan, back);
    EXPECT_EQ(back, iotest::payload_stream(c, kSpan)) << "client " << c;
  }
}

}  // namespace
}  // namespace llio::psrv
