// Multi-tenant psrv: the fair-share scheduler, the lease table, the
// session's lease-coherent client cache (hits, write-back, recalls,
// abandonment + fencing), and the acceptance fuzz — concurrent cached
// sessions must produce a final file image byte-identical to the same
// op schedule over uncached sessions and to an in-memory model.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "io_test_util.hpp"
#include "mpiio/info.hpp"
#include "psrv/lease.hpp"
#include "psrv/session.hpp"
#include "psrv/wire.hpp"

namespace llio::psrv {
namespace {

using iotest::small_pool_config;

// ---- FairScheduler -------------------------------------------------------

/// A request tagged with a recognizable marker in its message bytes.
PendingReq mk(std::int64_t session, std::int64_t marker) {
  PendingReq r;
  r.src = 0;
  r.session = session;
  wire::put_i64(r.msg, marker);
  return r;
}

std::int64_t marker_of(const PendingReq& r) {
  return wire::Reader(ConstByteSpan(r.msg.data(), r.msg.size())).i64();
}

TEST(FairScheduler, ExpressOvertakesQueuedData) {
  FairScheduler s(/*deadline_ticks=*/1000);
  s.push(mk(1, 10), /*now=*/0);
  s.push(mk(1, 11), 0);
  s.push_express(mk(2, 99));
  auto r = s.pop(0);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(marker_of(*r), 99);
  EXPECT_EQ(marker_of(*s.pop(0)), 10);
}

TEST(FairScheduler, WeightedRoundRobinHonorsWeights) {
  FairScheduler s(1000);
  s.set_weight(1, 1);
  s.set_weight(2, 3);
  for (int i = 0; i < 4; ++i) s.push(mk(1, 100 + i), 0);
  for (int i = 0; i < 12; ++i) s.push(mk(2, 200 + i), 0);
  // Each rotation serves 1 from session 1 and 3 from session 2.
  std::vector<std::int64_t> order;
  while (!s.empty()) order.push_back(s.pop(0)->session);
  ASSERT_EQ(order.size(), 16u);
  for (int rot = 0; rot < 4; ++rot) {
    EXPECT_EQ(order[to_size(Off{rot} * 4)], 1) << "rotation " << rot;
    for (int k = 1; k < 4; ++k)
      EXPECT_EQ(order[to_size(Off{rot} * 4 + k)], 2) << "rotation " << rot;
  }
}

TEST(FairScheduler, OverdueRequestsServeEarliestDeadlineFirst) {
  FairScheduler s(/*deadline_ticks=*/10);
  // Session 2 registers first (owns the rotation cursor) but its request
  // is younger; once both are overdue, EDF must pick session 1's.
  s.push(mk(2, 22), /*now=*/5);  // deadline 15
  s.push(mk(1, 11), /*now=*/0);  // deadline 10
  auto r = s.pop(/*now=*/20);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(marker_of(*r), 11);
  EXPECT_GE(s.escalations(), 1u);
}

TEST(FairScheduler, BlockedLaneIsSkippedUntilUnblocked) {
  FairScheduler s(1000);
  s.push(mk(1, 10), 0);
  s.push(mk(1, 11), 0);
  s.push(mk(2, 20), 0);
  s.block(1);
  EXPECT_EQ(marker_of(*s.pop(0)), 20);
  // Only the blocked lane remains: pop yields nothing, size stays.
  EXPECT_FALSE(s.pop(0).has_value());
  EXPECT_EQ(s.size(), 2u);
  s.unblock(1);
  EXPECT_EQ(marker_of(*s.pop(0)), 10);  // lane FIFO preserved
  EXPECT_EQ(marker_of(*s.pop(0)), 11);
}

TEST(FairScheduler, StealFrontTakesOnlyMatchingUnblockedFronts) {
  FairScheduler s(1000);
  s.push(mk(1, 10), 0);
  s.push(mk(1, 11), 0);
  s.push(mk(2, 20), 0);
  auto pred = [](std::int64_t want) {
    return [want](const PendingReq& r) { return marker_of(r) == want; };
  };
  // 11 sits behind 10: not a front, not stealable.
  EXPECT_FALSE(s.steal_front(pred(11)).has_value());
  EXPECT_EQ(marker_of(*s.steal_front(pred(20))), 20);
  s.block(1);
  EXPECT_FALSE(s.steal_front(pred(10)).has_value());
  s.unblock(1);
  EXPECT_EQ(marker_of(*s.steal_front(pred(10))), 10);
  EXPECT_EQ(s.size(), 1u);
}

TEST(FairScheduler, DropSessionForgetsItsQueue) {
  FairScheduler s(1000);
  s.push(mk(1, 10), 0);
  s.push(mk(1, 11), 0);
  s.push(mk(2, 20), 0);
  s.drop_session(1);
  EXPECT_EQ(s.size(), 1u);
  EXPECT_EQ(marker_of(*s.pop(0)), 20);
  EXPECT_TRUE(s.empty());
}

// ---- LeaseTable ----------------------------------------------------------

TEST(LeaseTable, ReadersShareWritersConflictAndRecall) {
  lease::LeaseTable t(/*grace=*/10);
  const auto r1 = t.acquire(1, /*session=*/100, lease::Mode::Read, 0, 100,
                            /*now=*/0, /*term=*/50);
  ASSERT_TRUE(r1.granted);
  EXPECT_EQ(r1.expiry, 50);
  const auto r2 =
      t.acquire(2, 200, lease::Mode::Read, 50, 150, 0, 50);
  EXPECT_TRUE(r2.granted);  // read-read never conflicts
  const auto w =
      t.acquire(3, 300, lease::Mode::Write, 40, 60, 0, 50);
  EXPECT_FALSE(w.granted);
  EXPECT_EQ(w.recalled.size(), 2u);  // both readers stood in the way
  EXPECT_EQ(t.stats().denied, 1u);
  EXPECT_EQ(t.stats().recalls, 2u);
  EXPECT_EQ(t.conflicts(300, /*writing=*/true, 40, 60, 0).size(), 2u);
  // A range covered only by the session's own lease: no self-conflict.
  EXPECT_TRUE(t.conflicts(100, true, 0, 40, 0).empty());
}

TEST(LeaseTable, NaturalExpiryLapsesReadLeasesOnly) {
  lease::LeaseTable t(10);
  ASSERT_TRUE(t.acquire(1, 100, lease::Mode::Read, 0, 10, 0, 5).granted);
  ASSERT_TRUE(
      t.acquire(2, 100, lease::Mode::Write, 20, 30, 0, 5).granted);
  EXPECT_EQ(t.sweep(/*now=*/100), 1);  // only the read lease lapsed
  EXPECT_EQ(t.stats().expired, 1u);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.covered_by_write(100, 20, 30, 100));
  EXPECT_FALSE(t.is_fenced(100, 20, 30));  // lapse is not force-expiry
}

TEST(LeaseTable, RecallGraceForceExpiryFencesWriteRanges) {
  lease::LeaseTable t(/*grace=*/10);
  ASSERT_TRUE(
      t.acquire(7, 100, lease::Mode::Write, 0, 50, /*now=*/0, 50).granted);
  const auto recalled = t.mark_recalled({7}, /*now=*/0);
  ASSERT_EQ(recalled.size(), 1u);
  EXPECT_EQ(recalled[0].recall_deadline, 10);
  EXPECT_EQ(t.earliest_recall_deadline(), 10);
  // Marking again is idempotent: no second recall message owed.
  EXPECT_TRUE(t.mark_recalled({7}, 5).empty());
  EXPECT_EQ(t.sweep(/*now=*/9), 0);  // grace still running
  EXPECT_EQ(t.sweep(/*now=*/10), 1);
  EXPECT_EQ(t.stats().force_expired, 1u);
  EXPECT_EQ(t.stats().fenced_ranges, 1u);
  EXPECT_TRUE(t.is_fenced(100, 0, 50));
  EXPECT_TRUE(t.is_fenced(100, 30, 200));  // any overlap fences
  EXPECT_FALSE(t.is_fenced(100, 60, 70));
  EXPECT_FALSE(t.is_fenced(999, 0, 50));  // other sessions unaffected
  t.drop_session(100);  // graceful close clears the fence
  EXPECT_FALSE(t.is_fenced(100, 0, 50));
}

TEST(LeaseTable, ActivityRenewsReadLeasesButNotRecalledOnes) {
  lease::LeaseTable t(10);
  ASSERT_TRUE(t.acquire(1, 100, lease::Mode::Read, 0, 10, 0, 10).granted);
  t.renew_session(100, /*now=*/8);
  ASSERT_NE(t.find(1), nullptr);
  EXPECT_EQ(t.find(1)->expiry, 18);
  t.mark_recalled({1}, 8);
  t.renew_session(100, /*now=*/12);
  EXPECT_EQ(t.find(1)->expiry, 18);  // recall deadline stands
  const std::uint64_t v = t.version();
  EXPECT_TRUE(t.release(1));
  EXPECT_GT(t.version(), v);  // parked requests re-evaluate on release
}

// ---- Session: the lease-coherent client cache ----------------------------

PoolConfig mt_pool_config() {
  PoolConfig cfg = small_pool_config();
  cfg.session_slots = 4;
  return cfg;
}

TEST(SessionCache, RepeatReadsAreServedWithoutWireTraffic) {
  auto pool = ServerPool::create(mt_pool_config());
  SessionConfig sc;
  sc.cache = true;
  auto f = ServerFile::create(pool, RequestClass::List, sc);
  const ByteVec data = iotest::payload_stream(1, 150);
  f->pwrite(0, data);  // crosses two shard boundaries
  ByteVec back(150);
  f->pread(0, back);
  EXPECT_EQ(back, data);
  const auto msgs_before = pool->wire_stats().msgs_sent;
  ByteVec again(150);
  f->pread(0, again);
  EXPECT_EQ(again, data);
  EXPECT_EQ(pool->wire_stats().msgs_sent, msgs_before)
      << "repeat read of cached blocks must not touch the wire";
  EXPECT_GT(f->session().cache_stats().hits, 0u);
}

TEST(SessionCache, ConflictingReaderRecallsWriteBackAndSeesTheData) {
  auto pool = ServerPool::create(mt_pool_config());
  SessionConfig sc;
  sc.cache = true;
  auto cached = ServerFile::create(pool, RequestClass::List, sc);
  auto direct = ServerFile::create(pool, RequestClass::List);
  const ByteVec data = iotest::payload_stream(2, 150);
  cached->pwrite(0, data);  // buffered client-side under write leases
  ByteVec back(150);
  direct->pread(0, back);  // parks, recalls, waits for the flush
  EXPECT_EQ(back, data);
  EXPECT_GE(cached->session().cache_stats().recalls, 1u);
  const ServerStats st = pool->total_server_stats();
  EXPECT_GE(st.recalls_sent, 1u);
  EXPECT_GE(st.writeback_ops, 1u);
}

TEST(SessionCache, WireWritesBypassCoherentlyThroughPrepareBypass) {
  // A vectored write takes the direct wire path even on a cached
  // session; the cache must flush + invalidate so a later cached read
  // does not resurrect stale bytes.
  auto pool = ServerPool::create(mt_pool_config());
  SessionConfig sc;
  sc.cache = true;
  auto f = ServerFile::create(pool, RequestClass::List, sc);
  const ByteVec a(96, Byte{0xAA});
  f->pwrite(0, a);  // cached write-back
  ByteVec warm(96);
  f->pread(0, warm);  // cache holds [0, 96)
  const ByteVec b(48, Byte{0xBB});
  const pfs::ConstIoVec iov[] = {{24, ConstByteSpan(b.data(), b.size())}};
  f->pwritev(iov);  // wire path
  ByteVec back(96);
  f->pread(0, back);
  for (Off i = 0; i < 96; ++i)
    EXPECT_EQ(back[to_size(i)], (i >= 24 && i < 72) ? Byte{0xBB} : Byte{0xAA})
        << "offset " << i;
}

TEST(SessionCache, AbandonedClientExpiresByGraceAndLateFlushIsFenced) {
  PoolConfig cfg = mt_pool_config();
  cfg.lease_grace = 64;
  auto pool = ServerPool::create(cfg);
  SessionConfig sc;
  sc.cache = true;
  auto dead = ServerFile::create(pool, RequestClass::List, sc);
  const std::int64_t dead_id = dead->session().id();
  const ByteVec doomed(96, Byte{0xDD});
  dead->pwrite(0, doomed);      // dirty write-back, never flushed
  dead->session().abandon();    // client dies without a word

  // A live writer parks on the dead session's leases; the stalled server
  // jumps the sim clock to the recall deadline, force-expires them and
  // fences the dirty range, then serves.
  auto live = ServerFile::create(pool, RequestClass::List);
  const ByteVec fresh = iotest::payload_stream(3, 96);
  live->pwrite(0, fresh);
  ByteVec back(96);
  live->pread(0, back);
  EXPECT_EQ(back, fresh);

  // A write-back straggling in from the dead session must be dropped
  // extent-by-extent, not applied over the newer data.
  {
    auto ep = pool->checkout();
    ByteVec msg = wire::request_header(wire::Op::WriteBack, dead_id);
    wire::put_i64(msg, 1);   // one extent
    wire::put_i64(msg, 0);   // server-local offset on server 0
    wire::put_i64(msg, 32);  // length
    const ByteVec junk(32, Byte{0xEE});
    const ConstByteSpan runs[] = {ConstByteSpan(junk.data(), junk.size())};
    ep.comm().send_gather(0, wire::kTagRequest, ConstByteSpan(msg), runs,
                          sim::MsgClass::Data);
    const ByteVec resp = ep.comm().recv(0, wire::kTagResponse);
    wire::Reader rd(ConstByteSpan(resp.data(), resp.size()));
    EXPECT_EQ(rd.u8(), static_cast<std::uint8_t>(wire::Status::Ok));
    EXPECT_EQ(rd.i64(), 0) << "fenced write-back must apply zero bytes";
  }
  EXPECT_GE(pool->total_server_stats().fenced_drops, 1u);
  ByteVec after(96);
  live->pread(0, after);
  EXPECT_EQ(after, fresh) << "fenced bytes landed over newer data";
}

TEST(SessionHints, OptionsConfigureWeightCacheAndLeaseTerm) {
  mpiio::Info info;
  info.set("llio_psrv_servers", "2");
  info.set("llio_psrv_session_weight", "5");
  info.set("llio_psrv_cache", "on");
  info.set("llio_psrv_lease_ms", "4096");
  const mpiio::Options o = mpiio::apply_info(info, mpiio::Options{});
  auto f = make_server_file(o);
  EXPECT_EQ(f->session().config().weight, 5);
  EXPECT_TRUE(f->session().cache_enabled());
  EXPECT_EQ(f->session().config().lease_term, 4096);
  EXPECT_THROW(
      {
        mpiio::Info bad;
        bad.set("llio_psrv_session_weight", "0");
        mpiio::apply_info(bad, mpiio::Options{});
      },
      Error);
}

// ---- Acceptance fuzz: cached == uncached == model ------------------------

// Byte i is owned by tenant (i / kChunk) % T.  kChunk deliberately
// divides neither the 64-byte cache blocks nor the 64-byte stripes, so
// tenants false-share blocks (write leases collide block-aligned while
// the bytes stay disjoint) and extents straddle shard boundaries.
constexpr int kTenants = 3;
constexpr Off kSpan = 4 << 10;
constexpr Off kChunk = 48;

struct FuzzResult {
  ByteVec image;
  ByteVec model;
  std::uint64_t recalls = 0;
};

FuzzResult run_fuzz_world(bool cache) {
  PoolConfig pc = small_pool_config();
  pc.capacity = kSpan;
  pc.session_slots = kTenants + 1;
  pc.lease_grace = 256;
  auto pool = ServerPool::create(pc);
  {  // Pre-extend to the full span so no read ever lands past EOF.
    auto init = ServerFile::create(pool, RequestClass::List);
    init->pwrite(0, ByteVec(to_size(kSpan), Byte{0}));
  }
  std::vector<std::shared_ptr<ServerFile>> files;
  for (int t = 0; t < kTenants; ++t) {
    SessionConfig sc;
    sc.cache = cache;
    sc.cache_block = 64;
    sc.cache_capacity = 16;  // 1 KB cache < 4 KB span: forced evictions
    files.push_back(ServerFile::create(pool, RequestClass::List, sc));
  }

  ByteVec model(to_size(kSpan), Byte{0});
  std::vector<std::thread> tenants;
  for (int t = 0; t < kTenants; ++t) {
    tenants.emplace_back([&, t] {
      // Deterministic per-tenant schedule, identical across cache modes.
      std::uint64_t rng = 0x9E3779B97F4A7C15ull * static_cast<unsigned>(t + 1);
      auto next = [&rng] {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        return rng;
      };
      ServerFile& f = *files[static_cast<std::size_t>(t)];
      for (int op = 0; op < 160; ++op) {
        // Pick one of my chunks and a sub-extent inside it.
        const Off nchunks = kSpan / kChunk;
        Off c = to_off(next() % static_cast<std::uint64_t>(nchunks));
        c = c - (c % kTenants) + Off{t};  // chunk index owned by me
        if (c >= nchunks) c = Off{t};
        const Off base = c * kChunk;
        const Off lo = base + to_off(next() % 32);
        const Off len = 1 + to_off(next() % to_size(kChunk - (lo - base)));
        const std::uint64_t kind = next() % 8;
        if (kind < 4) {  // write my bytes, remember them in the model
          ByteVec data(to_size(len));
          for (Off i = 0; i < len; ++i)
            data[to_size(i)] = Byte{static_cast<unsigned char>(next())};
          f.pwrite(lo, data);
          // My bytes are mine alone: plain stores race with nobody.
          std::memcpy(model.data() + lo, data.data(), data.size());
        } else if (kind < 7) {  // read my bytes back, verify vs model
          ByteVec back(to_size(len));
          f.pread(lo, back);
          for (Off i = 0; i < len; ++i)
            EXPECT_EQ(back[to_size(i)], model[to_size(lo + i)])
                << "tenant " << t << " off " << lo + i << " cache "
                << cache;
        } else {  // foreign read: provoke recalls, no value to verify
          const Off flo = to_off(next() % to_size(kSpan - 64));
          ByteVec sink(64);
          f.pread(flo, sink);
        }
      }
      f.sync();  // flush this tenant's write-back
    });
  }
  for (std::thread& th : tenants) th.join();

  FuzzResult r;
  for (const auto& f : files)
    r.recalls += f->session().cache_stats().recalls;
  // Final image through a fresh uncached session (its reads recall any
  // leftover leases, so this also exercises the teardown coherence).
  auto reader = ServerFile::create(pool, RequestClass::List);
  r.image.resize(to_size(kSpan), Byte{0});
  reader->pread(0, r.image);
  r.model = std::move(model);
  return r;
}

TEST(PsrvMtFuzz, ConcurrentCachedSessionsMatchUncachedAndModel) {
  const FuzzResult uncached = run_fuzz_world(false);
  const FuzzResult cached = run_fuzz_world(true);
  EXPECT_EQ(uncached.image, uncached.model);
  EXPECT_EQ(cached.image, cached.model);
  EXPECT_EQ(cached.image, uncached.image)
      << "lease-coherent caching changed the bytes";
  // The schedule must actually have exercised the coherence machinery.
  EXPECT_GT(cached.recalls, 0u) << "fuzz never provoked a recall";
}

}  // namespace
}  // namespace llio::psrv
