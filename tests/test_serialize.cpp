#include <gtest/gtest.h>

#include "common/error.hpp"
#include "dtype/serialize.hpp"
#include "test_util.hpp"

namespace llio::dt {
namespace {

void expect_roundtrip(const Type& t) {
  const ByteVec wire = serialize(t);
  const Type back = deserialize(wire);
  EXPECT_TRUE(equal(t, back)) << to_string(t) << " != " << to_string(back);
  EXPECT_EQ(size(back), size(t));
  EXPECT_EQ(extent(back), extent(t));
  EXPECT_EQ(block_count(back), block_count(t));
}

TEST(Serialize, Basic) { expect_roundtrip(double_()); }

TEST(Serialize, Contiguous) { expect_roundtrip(contiguous(12, int_())); }

TEST(Serialize, Vector) { expect_roundtrip(vector(8, 2, 5, double_())); }

TEST(Serialize, Indexed) {
  const Off bls[] = {1, 2, 3};
  const Off ds[] = {0, 40, 200};
  expect_roundtrip(hindexed(bls, ds, byte()));
}

TEST(Serialize, Struct) {
  const Off bls[] = {2, 1};
  const Off ds[] = {0, 32};
  const Type kids[] = {int_(), vector(2, 1, 3, double_())};
  expect_roundtrip(struct_(bls, ds, kids));
}

TEST(Serialize, Resized) {
  expect_roundtrip(resized(vector(4, 1, 2, byte()), 0, 64));
}

TEST(Serialize, DeepNesting) {
  Type t = byte();
  for (int i = 0; i < 20; ++i) t = hvector(2, 1, 3 + i, t);
  expect_roundtrip(t);
}

TEST(Serialize, CompactComparedToOlList) {
  // The point of fileview caching: the wire form scales with the tree,
  // not with N_block (paper §3.2.3).
  const Type t = hvector(100000, 1, 16, double_());
  const ByteVec wire = serialize(t);
  EXPECT_LT(to_off(wire.size()), 64);
  EXPECT_EQ(flatten(t).memory_bytes(), 1600000);
}

TEST(Serialize, RandomTreesRoundTrip) {
  testutil::Rng rng(123);
  for (int i = 0; i < 200; ++i)
    expect_roundtrip(testutil::random_type(rng, 4));
}

TEST(Deserialize, RejectsTruncatedInput) {
  const ByteVec wire = serialize(vector(8, 2, 5, double_()));
  for (std::size_t cut : {std::size_t{0}, wire.size() / 2, wire.size() - 1}) {
    EXPECT_THROW(deserialize(ConstByteSpan(wire.data(), cut)), Error);
  }
}

TEST(Deserialize, RejectsTrailingBytes) {
  ByteVec wire = serialize(byte());
  wire.push_back(Byte{0});
  EXPECT_THROW(deserialize(wire), Error);
}

TEST(Deserialize, RejectsBadKind) {
  ByteVec wire = serialize(byte());
  wire[0] = Byte{0xFF};
  EXPECT_THROW(deserialize(wire), Error);
}

TEST(Deserialize, RejectsBadBasicId) {
  ByteVec wire = serialize(byte());
  wire[1] = Byte{0x7F};
  EXPECT_THROW(deserialize(wire), Error);
}

}  // namespace
}  // namespace llio::dt
