// Shared file pointer and ordered collective access.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <map>
#include <set>
#include <string>

#include "io_test_util.hpp"

namespace llio::mpiio {
namespace {

TEST(SharedFp, StartsAtZeroAndAdvances) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    EXPECT_EQ(f.tell_shared(), 0);
    const ByteVec data = iotest::payload_stream(0, 32);
    EXPECT_EQ(f.write_shared(data.data(), 32, dt::byte()), 32);
    EXPECT_EQ(f.tell_shared(), 32);
    ByteVec back(16);
    f.seek_shared(0);
    EXPECT_EQ(f.read_shared(back.data(), 16, dt::byte()), 16);
    EXPECT_EQ(f.tell_shared(), 16);
    EXPECT_TRUE(std::equal(back.begin(), back.end(), data.begin()));
  });
}

TEST(SharedFp, ConcurrentWritesClaimDisjointRanges) {
  // Every rank appends its marker block via write_shared; the order is
  // unspecified, but the blocks must be disjoint and all present.
  const int P = 4;
  const Off blk = 64;
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    ByteVec mine(to_size(blk),
                 Byte{static_cast<unsigned char>(0x10 + comm.rank())});
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(f.write_shared(mine.data(), blk, dt::byte()), blk);
  });
  ASSERT_EQ(fs->size(), P * 3 * blk);
  // Each block is uniform and each rank appears exactly 3 times.
  const ByteVec img = fs->contents();
  std::map<Byte, int> counts;
  for (Off b = 0; b < P * 3; ++b) {
    const Byte v = img[to_size(b * blk)];
    for (Off j = 1; j < blk; ++j)
      ASSERT_EQ(img[to_size(b * blk + j)], v) << "torn block " << b;
    counts[v]++;
  }
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(P));
  for (const auto& [v, c] : counts) EXPECT_EQ(c, 3);
}

TEST(SharedFp, OrderedWriteSerializesByRank) {
  const int P = 4;
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.set_view(0, dt::double_(), dt::double_());  // etype = double
    // Variable sizes: rank r writes r+1 doubles of value r.
    std::vector<double> mine(to_size(Off{comm.rank()} + 1),
                             static_cast<double>(comm.rank()));
    EXPECT_EQ(f.write_ordered(mine.data(), to_off(mine.size()), dt::double_()),
              to_off(mine.size() * 8));
    // Second round appends after everyone.
    EXPECT_EQ(f.write_ordered(mine.data(), to_off(mine.size()), dt::double_()),
              to_off(mine.size() * 8));
    EXPECT_EQ(f.tell_shared(), 2 * (1 + 2 + 3 + 4));
  });
  // Layout: 0 | 1 1 | 2 2 2 | 3 3 3 3, twice.
  const ByteVec img = fs->contents();
  const double* vals = reinterpret_cast<const double*>(img.data());
  std::size_t at = 0;
  for (int round = 0; round < 2; ++round)
    for (int r = 0; r < P; ++r)
      for (int i = 0; i <= r; ++i)
        EXPECT_EQ(vals[at++], static_cast<double>(r))
            << "round " << round << " rank " << r;
}

TEST(SharedFp, OrderedReadMatchesWrite) {
  const int P = 3;
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    const ByteVec mine = iotest::payload_stream(comm.rank(), 48);
    f.write_ordered(mine.data(), 48, dt::byte());
    f.seek_shared(0);
    ByteVec back(48, Byte{0});
    f.read_ordered(back.data(), 48, dt::byte());
    EXPECT_EQ(back, mine);
    EXPECT_EQ(f.tell_shared(), P * 48);
  });
}

TEST(SharedFp, SeekSharedWhence) {
  auto fs = pfs::MemFile::create(100);
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.seek_shared(10);
    EXPECT_EQ(f.tell_shared(), 10);
    f.seek_shared(5, File::Whence::Cur);
    EXPECT_EQ(f.tell_shared(), 15);
    f.seek_shared(-20, File::Whence::End);  // size 100, etype byte
    EXPECT_EQ(f.tell_shared(), 80);
  });
}

TEST(SharedFp, SetViewResetsSharedPointer) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    const ByteVec data(16, Byte{1});
    f.write_shared(data.data(), 16, dt::byte());
    comm.barrier();
    EXPECT_EQ(f.tell_shared(), 32);  // both ranks wrote
    f.set_view(0, dt::byte(), dt::byte());
    EXPECT_EQ(f.tell_shared(), 0);
  });
}

TEST(SharedFp, RequiresWholeEtypes) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.set_view(0, dt::int_(), dt::int_());
    ByteVec data(6, Byte{0});
    EXPECT_THROW(f.write_shared(data.data(), 6, dt::byte()), Error);
  });
}

TEST(SharedFp, WorksThroughNoncontigView) {
  // The shared pointer counts etypes of the view, so shared appends land
  // in this rank's visible bytes only.
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.set_view(0, dt::byte(),
               iotest::noncontig_filetype(4, 8, 2, comm.rank()));
    const ByteVec mine = iotest::payload_stream(comm.rank(), 32);
    f.write_ordered(mine.data(), 32, dt::byte());
    // Rank 0's view bytes 0..31 then rank 1's view bytes 32..63.
    ByteVec back(32, Byte{0});
    if (comm.rank() == 0)
      f.read_at(0, back.data(), 32, dt::byte());
    else
      f.read_at(32, back.data(), 32, dt::byte());
    EXPECT_EQ(back, mine);
  });
}

// The shared-pointer and atomic-mode machinery sits above the storage
// backend, but the psrv wire path (request classes, session credits,
// write aggregation) is exactly where a serialization bug would surface
// as a torn or misplaced shared append — so run the core scenarios over
// the full backend matrix, verifying through the public read path
// (MemFile::contents() does not exist on a ServerFile).
class SharedFpBackend : public ::testing::TestWithParam<iotest::Backend> {};

TEST_P(SharedFpBackend, ConcurrentWritesClaimDisjointRanges) {
  const int P = 4;
  const Off blk = 96;  // crosses the 64-byte psrv stripe every time
  auto fs = iotest::make_backend(GetParam());
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    ByteVec mine(to_size(blk),
                 Byte{static_cast<unsigned char>(0x10 + comm.rank())});
    for (int i = 0; i < 3; ++i)
      EXPECT_EQ(f.write_shared(mine.data(), blk, dt::byte()), blk);
  });
  ASSERT_EQ(fs->size(), P * 3 * blk);
  const ByteVec img = iotest::backend_image(fs);
  std::map<Byte, int> counts;
  for (Off b = 0; b < P * 3; ++b) {
    const Byte v = img[to_size(b * blk)];
    for (Off j = 1; j < blk; ++j)
      ASSERT_EQ(img[to_size(b * blk + j)], v) << "torn block " << b;
    counts[v]++;
  }
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(P));
  for (const auto& [v, c] : counts) EXPECT_EQ(c, 3);
}

TEST_P(SharedFpBackend, OrderedWriteThenReadRoundTrips) {
  const int P = 3;
  auto fs = iotest::make_backend(GetParam());
  sim::Runtime::run(P, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    const ByteVec mine = iotest::payload_stream(comm.rank(), 80);
    EXPECT_EQ(f.write_ordered(mine.data(), 80, dt::byte()), 80);
    f.seek_shared(0);
    ByteVec back(80, Byte{0});
    EXPECT_EQ(f.read_ordered(back.data(), 80, dt::byte()), 80);
    EXPECT_EQ(back, mine);
    EXPECT_EQ(f.tell_shared(), P * 80);
  });
  // Rank order in the file: rank 0's stream, then 1's, then 2's.
  const ByteVec img = iotest::backend_image(fs);
  ASSERT_EQ(img.size(), to_size(Off{P} * 80));
  for (int r = 0; r < P; ++r) {
    const ByteVec want = iotest::payload_stream(r, 80);
    EXPECT_TRUE(std::equal(want.begin(), want.end(),
                           img.begin() + r * 80))
        << "rank " << r << " segment";
  }
}

TEST_P(SharedFpBackend, OrderedWriteThroughNoncontigView) {
  auto fs = iotest::make_backend(GetParam());
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    File f = File::open(comm, fs);
    f.set_view(0, dt::byte(),
               iotest::noncontig_filetype(4, 8, 2, comm.rank()));
    const ByteVec mine = iotest::payload_stream(comm.rank(), 32);
    f.write_ordered(mine.data(), 32, dt::byte());
    ByteVec back(32, Byte{0});
    f.read_at(comm.rank() == 0 ? 0 : 32, back.data(), 32, dt::byte());
    EXPECT_EQ(back, mine);
  });
}

TEST_P(SharedFpBackend, AtomicOverlappingWritersAreNotTorn) {
  // As in test_strategies: two writers hammer the same viewed region
  // with uniform values while a reader polls; atomic mode must keep
  // every observed snapshot single-valued even when the backend splits
  // the access across shards and request batches.
  auto fs = iotest::make_backend(GetParam());
  const Off nblock = 8, sblock = 8;
  const Off nbytes = nblock * sblock;
  std::atomic<bool> torn{false};
  sim::Runtime::run(3, [&](sim::Comm& comm) {
    Options o;
    o.file_buffer_size = 16;  // many windows -> torn without atomicity
    File f = File::open(comm, fs, o);
    f.set_atomicity(true);
    f.set_view(0, dt::byte(), iotest::noncontig_filetype(nblock, sblock, 2, 0));
    if (comm.rank() < 2) {
      ByteVec mine(to_size(nbytes),
                   Byte{static_cast<unsigned char>(0xA0 + comm.rank())});
      for (int i = 0; i < 15; ++i)
        f.write_at(0, mine.data(), nbytes, dt::byte());
    } else {
      ByteVec seen(to_size(nbytes));
      for (int i = 0; i < 30; ++i) {
        f.read_at(0, seen.data(), nbytes, dt::byte());
        const Byte first = seen[0];
        if (first != Byte{0})  // skip until someone wrote
          for (Byte b : seen)
            if (b != first) torn = true;
      }
    }
  });
  EXPECT_FALSE(torn.load());
}

INSTANTIATE_TEST_SUITE_P(
    AllBackends, SharedFpBackend, ::testing::ValuesIn(iotest::kAllBackends),
    [](const ::testing::TestParamInfo<iotest::Backend>& pinfo) {
      std::string n = iotest::backend_name(pinfo.param);
      std::replace(n.begin(), n.end(), '-', '_');
      return n;
    });

}  // namespace
}  // namespace llio::mpiio
