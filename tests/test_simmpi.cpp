#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <numeric>
#include <set>

#include "common/error.hpp"
#include "simmpi/comm.hpp"

namespace llio::sim {
namespace {

ByteVec bytes_of(const std::string& s) {
  ByteVec v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

std::string string_of(const ByteVec& v) {
  return std::string(reinterpret_cast<const char*>(v.data()), v.size());
}

TEST(Runtime, RunsAllRanks) {
  std::atomic<int> hits{0};
  Runtime::run(5, [&](Comm& c) {
    EXPECT_EQ(c.size(), 5);
    EXPECT_GE(c.rank(), 0);
    EXPECT_LT(c.rank(), 5);
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 5);
}

TEST(Runtime, SingleRank) {
  Runtime::run(1, [&](Comm& c) {
    EXPECT_EQ(c.size(), 1);
    c.barrier();
    auto all = c.allgather(bytes_of("x"));
    ASSERT_EQ(all.size(), 1u);
    EXPECT_EQ(string_of(all[0]), "x");
  });
}

TEST(Runtime, RejectsZeroRanks) {
  EXPECT_THROW(Runtime::run(0, [](Comm&) {}), Error);
}

TEST(PointToPoint, DeliversInOrder) {
  Runtime::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 7, bytes_of("first"));
      c.send(1, 7, bytes_of("second"));
    } else {
      EXPECT_EQ(string_of(c.recv(0, 7)), "first");
      EXPECT_EQ(string_of(c.recv(0, 7)), "second");
    }
  });
}

TEST(PointToPoint, MatchesByTag) {
  Runtime::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      c.send(1, 1, bytes_of("one"));
      c.send(1, 2, bytes_of("two"));
    } else {
      // Receive out of send order by selecting the tag.
      EXPECT_EQ(string_of(c.recv(0, 2)), "two");
      EXPECT_EQ(string_of(c.recv(0, 1)), "one");
    }
  });
}

TEST(PointToPoint, BadRankThrows) {
  Runtime::run(1, [&](Comm& c) {
    EXPECT_THROW(c.send(5, 0, bytes_of("x")), Error);
    EXPECT_THROW(c.recv(-1, 0), Error);
  });
}

TEST(PointToPoint, MoveSendIsZeroCopy) {
  // The rvalue send overload must hand the sender's buffer to the
  // receiver without reallocating: the receiver sees the same data
  // pointer and capacity, and the stats accounting matches the copying
  // overload.
  Runtime::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      ByteVec big = bytes_of("zero-copy payload");
      big.reserve(4096);
      // Ship the buffer's identity out of band so rank 1 can verify.
      const auto ptr = reinterpret_cast<std::uintptr_t>(big.data());
      const auto cap = static_cast<std::uint64_t>(big.capacity());
      ByteVec ident(sizeof(ptr) + sizeof(cap));
      std::memcpy(ident.data(), &ptr, sizeof(ptr));
      std::memcpy(ident.data() + sizeof(ptr), &cap, sizeof(cap));
      c.send(1, 1, ident, MsgClass::Meta);
      c.send(1, 2, std::move(big));
      EXPECT_EQ(c.stats().data_bytes_sent, 17u);  // charged before the move
    } else {
      const ByteVec ident = c.recv(0, 1);
      std::uintptr_t ptr;
      std::uint64_t cap;
      std::memcpy(&ptr, ident.data(), sizeof(ptr));
      std::memcpy(&cap, ident.data() + sizeof(ptr), sizeof(cap));
      const ByteVec got = c.recv(0, 2);
      EXPECT_EQ(string_of(got), "zero-copy payload");
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(got.data()), ptr);
      EXPECT_EQ(static_cast<std::uint64_t>(got.capacity()), cap);
    }
  });
}

TEST(Collectives, AlltoallAndAllgatherMoveTheSelfSlot) {
  Runtime::run(2, [&](Comm& c) {
    std::vector<ByteVec> out(2);
    for (int r = 0; r < 2; ++r) out[to_size(Off{r})] = bytes_of("payload");
    const Byte* self = out[to_size(Off{c.rank()})].data();
    auto in = c.alltoall(std::move(out));
    EXPECT_EQ(in[to_size(Off{c.rank()})].data(), self);

    ByteVec mine = bytes_of("gathered");
    const Byte* mptr = mine.data();
    auto all = c.allgather(std::move(mine));
    EXPECT_EQ(all[to_size(Off{c.rank()})].data(), mptr);
    EXPECT_EQ(string_of(all[to_size(Off{1 - c.rank()})]), "gathered");
  });
}

TEST(Collectives, Allgather) {
  Runtime::run(4, [&](Comm& c) {
    auto all = c.allgather(bytes_of(std::string(1, char('a' + c.rank()))));
    ASSERT_EQ(all.size(), 4u);
    for (int r = 0; r < 4; ++r)
      EXPECT_EQ(string_of(all[to_size(Off{r})]), std::string(1, char('a' + r)));
  });
}

TEST(Collectives, Alltoall) {
  Runtime::run(3, [&](Comm& c) {
    std::vector<ByteVec> out(3);
    for (int r = 0; r < 3; ++r)
      out[to_size(Off{r})] =
          bytes_of(std::to_string(c.rank()) + "->" + std::to_string(r));
    auto in = c.alltoall(std::move(out));
    for (int r = 0; r < 3; ++r)
      EXPECT_EQ(string_of(in[to_size(Off{r})]),
                std::to_string(r) + "->" + std::to_string(c.rank()));
  });
}

TEST(Collectives, AlltoallEmptyPayloads) {
  Runtime::run(3, [&](Comm& c) {
    std::vector<ByteVec> out(3);  // all empty
    auto in = c.alltoall(std::move(out));
    for (const auto& v : in) EXPECT_TRUE(v.empty());
  });
}

TEST(Collectives, Bcast) {
  Runtime::run(4, [&](Comm& c) {
    const ByteVec got =
        c.bcast(2, c.rank() == 2 ? bytes_of("root-data") : ByteVec{});
    EXPECT_EQ(string_of(got), "root-data");
  });
}

TEST(Collectives, AllreduceSumMinMax) {
  Runtime::run(4, [&](Comm& c) {
    const Off v = c.rank() + 1;  // 1..4
    EXPECT_EQ(c.allreduce_sum(v), 10);
    EXPECT_EQ(c.allreduce_min(v), 1);
    EXPECT_EQ(c.allreduce_max(v), 4);
  });
}

TEST(Collectives, ExscanSum) {
  Runtime::run(5, [&](Comm& c) {
    const Off v = (c.rank() + 1) * 10;  // 10,20,30,40,50
    Off want = 0;
    for (int r = 0; r < c.rank(); ++r) want += (r + 1) * 10;
    EXPECT_EQ(c.exscan_sum(v), want);
  });
}

TEST(Collectives, ExscanSingleRankIsZero) {
  Runtime::run(1, [&](Comm& c) { EXPECT_EQ(c.exscan_sum(42), 0); });
}

TEST(Collectives, BarrierSeparatesPhases) {
  std::atomic<int> phase1{0};
  std::atomic<bool> ok{true};
  Runtime::run(4, [&](Comm& c) {
    phase1.fetch_add(1);
    c.barrier();
    if (phase1.load() != 4) ok = false;
  });
  EXPECT_TRUE(ok.load());
}

TEST(Collectives, RepeatedBarriers) {
  Runtime::run(3, [&](Comm& c) {
    for (int i = 0; i < 50; ++i) c.barrier();
  });
}

TEST(Stats, CountsBytesByClass) {
  Runtime::run(2, [&](Comm& c) {
    c.reset_stats();
    if (c.rank() == 0) {
      c.send(1, 0, bytes_of("12345"), MsgClass::Data);
      c.send(1, 1, bytes_of("123"), MsgClass::Meta);
    } else {
      c.recv(0, 0);
      c.recv(0, 1);
    }
    c.barrier();
    if (c.rank() == 0) {
      EXPECT_EQ(c.stats().data_bytes_sent, 5u);
      EXPECT_EQ(c.stats().meta_bytes_sent, 3u);
      EXPECT_EQ(c.stats().msgs_sent, 2u);
    } else {
      EXPECT_EQ(c.stats().total_bytes(), 0u);
    }
    const CommStats g = c.global_stats();
    EXPECT_EQ(g.data_bytes_sent, 5u);
    EXPECT_EQ(g.meta_bytes_sent, 3u);
  });
}

TEST(CostModel, ChargesReceiveTime) {
  CommCostModel net;
  net.latency_s = 2e-3;
  net.bandwidth_bps = 1e6;  // 1 MB/s: 1 KiB costs ~1 ms
  double elapsed = 0;
  Runtime::run(2, net, [&](Comm& c) {
    const ByteVec payload(1024, Byte{1});
    c.barrier();
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < 5; ++i) {
      if (c.rank() == 0)
        c.send(1, 0, payload);
      else
        c.recv(0, 0);
    }
    if (c.rank() == 1)
      elapsed = std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  });
  // 5 messages x (2 ms latency + ~1 ms transfer) >= 15 ms.
  EXPECT_GT(elapsed, 0.012);
}

TEST(CostModel, FreeModelAddsNothingMeasurable) {
  Runtime::run(2, CommCostModel{}, [&](Comm& c) {
    if (c.rank() == 0)
      c.send(1, 0, ByteVec(8, Byte{1}));
    else
      EXPECT_EQ(c.recv(0, 0).size(), 8u);
  });
}

TEST(Abort, FailingRankUnblocksPeers) {
  // Rank 1 throws while rank 0 waits in recv: the runtime must abort the
  // wait and rethrow the original error.
  try {
    Runtime::run(2, [&](Comm& c) {
      if (c.rank() == 1) throw_error(Errc::Io, "simulated failure");
      c.recv(1, 0);  // never satisfied
    });
    FAIL() << "expected an exception";
  } catch (const Error& e) {
    SUCCEED();
  }
}

TEST(Abort, FailingRankUnblocksBarrier) {
  EXPECT_THROW(Runtime::run(3, [&](Comm& c) {
    if (c.rank() == 2) throw_error(Errc::Io, "boom");
    c.barrier();
  }), Error);
}

TEST(PointToPoint, TryRecvAnyDrainsWithoutBlocking) {
  Runtime::run(3, [&](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_FALSE(c.try_recv_any(9).has_value());  // nothing sent yet
      c.barrier();
      std::set<int> srcs;
      while (srcs.size() < 2) {
        if (auto m = c.try_recv_any(9)) {
          EXPECT_EQ(string_of(m->second), "ping");
          srcs.insert(m->first);
        }
      }
      EXPECT_EQ(srcs, (std::set<int>{1, 2}));
    } else {
      c.barrier();
      c.send(0, 9, bytes_of("ping"));
    }
  });
}

TEST(PointToPoint, RecvAnyForTimesOutOnSilenceThenDelivers) {
  Runtime::run(2, [&](Comm& c) {
    if (c.rank() == 0) {
      EXPECT_FALSE(c.recv_any_for(5, 0.01).has_value());
      c.barrier();  // now the sender fires
      const auto m = c.recv_any_for(5, 10.0);
      ASSERT_TRUE(m.has_value());
      EXPECT_EQ(m->first, 1);
      EXPECT_EQ(string_of(m->second), "late");
    } else {
      c.barrier();
      c.send(0, 5, bytes_of("late"));
    }
  });
}

TEST(Runtime, RunJobsWorldsAreIndependent) {
  // Each job is its own communicator world: collectives see only the
  // job's own ranks, never a neighbor job's.
  std::atomic<int> hits{0};
  Runtime::run_jobs(3, 2, CommCostModel{}, [&](int job, Comm& c) {
    EXPECT_EQ(c.size(), 2);
    const auto all = c.allgather(bytes_of(std::to_string(job * 10 + c.rank())));
    ASSERT_EQ(all.size(), 2u);
    EXPECT_EQ(string_of(all[0]), std::to_string(job * 10));
    EXPECT_EQ(string_of(all[1]), std::to_string(job * 10 + 1));
    hits.fetch_add(1);
  });
  EXPECT_EQ(hits.load(), 6);
}

TEST(Runtime, RunJobsRethrowsAJobsFailure) {
  EXPECT_THROW(Runtime::run_jobs(2, 1, CommCostModel{},
                                 [&](int job, Comm&) {
                                   if (job == 1)
                                     throw_error(Errc::Io, "job died");
                                 }),
               Error);
}

}  // namespace
}  // namespace llio::sim
