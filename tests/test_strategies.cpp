// Access-strategy features: direct (non-sieving) independent access — the
// paper §5 sieving trade-off — plus split collectives.
#include <gtest/gtest.h>

#include "io_test_util.hpp"

namespace llio::mpiio {
namespace {

using iotest::noncontig_filetype;
using iotest::payload_stream;

class Strategies : public ::testing::TestWithParam<Method> {};

TEST_P(Strategies, DirectWriteMatchesSieving) {
  const Off nblock = 9, sblock = 8;
  const Off nbytes = 3 * nblock * sblock;
  auto run = [&](Sieving mode) {
    auto fs = pfs::MemFile::create();
    sim::Runtime::run(2, [&](sim::Comm& comm) {
      Options o;
      o.method = GetParam();
      o.file_buffer_size = 128;
      o.ds_write = mode;
      o.ds_read = mode;
      File f = File::open(comm, fs, o);
      f.set_view(0, dt::byte(),
                 noncontig_filetype(nblock, sblock, 2, comm.rank()));
      const ByteVec stream = payload_stream(comm.rank(), nbytes);
      EXPECT_EQ(f.write_at(0, stream.data(), nbytes, dt::byte()), nbytes);
      comm.barrier();
      ByteVec back(to_size(nbytes), Byte{0});
      EXPECT_EQ(f.read_at(0, back.data(), nbytes, dt::byte()), nbytes);
      EXPECT_EQ(back, stream);
    });
    return fs->contents();
  };
  ByteVec sieved = run(Sieving::Always);
  ByteVec direct = run(Sieving::Never);
  sieved.resize(std::max(sieved.size(), direct.size()), Byte{0});
  direct.resize(sieved.size(), Byte{0});
  EXPECT_EQ(sieved, direct);
}

TEST_P(Strategies, DirectWriteTouchesOnlyOwnBytes) {
  // Direct mode must not disturb gap bytes at all (no RMW).
  const Off nblock = 6, sblock = 8;
  auto fs = pfs::MemFile::create();
  ByteVec old(to_size(2 * nblock * sblock), Byte{0xAB});
  fs->pwrite(0, old);
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    o.ds_write = Sieving::Never;
    o.iov_batch_max = 4;
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(), noncontig_filetype(nblock, sblock, 2, 0));
    const ByteVec stream = payload_stream(7, nblock * sblock);
    f.write_at(0, stream.data(), nblock * sblock, dt::byte());
    // The nblock contiguous runs are coalesced into vectored writes of at
    // most iov_batch_max segments each: ceil(6 / 4) = 2 file ops.
    EXPECT_EQ(f.last_stats().file_write_ops, 2u);
    EXPECT_EQ(f.last_stats().file_write_bytes, nblock * sblock);
    EXPECT_EQ(f.last_stats().file_read_bytes, 0);
  });
  const ByteVec img = fs->contents();
  for (Off i = 0; i < to_off(old.size()); ++i) {
    const Off inst = i / (2 * sblock);
    const Off within = i % (2 * sblock);
    if (inst < nblock && within < sblock) {
      EXPECT_EQ(img[to_size(i)],
                iotest::payload_byte(7, inst * sblock + within));
    } else {
      EXPECT_EQ(img[to_size(i)], Byte{0xAB}) << i;
    }
  }
}

TEST_P(Strategies, AutomaticPicksDirectForSparseAccess) {
  // Very sparse view (8 bytes every 4 KiB): Automatic must not pre-read
  // entire windows.
  auto fs = pfs::MemFile::create();
  fs->resize(1 << 20);
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    o.ds_write = Sieving::Automatic;
    o.sieve_min_fill = 0.2;
    File f = File::open(comm, fs, o);
    const dt::Type sparse =
        dt::resized(dt::hvector(8, 8, 4096, dt::byte()), 0, 8 * 4096);
    f.set_view(0, dt::byte(), sparse);
    const ByteVec stream = payload_stream(1, 64);
    f.write_at(0, stream.data(), 64, dt::byte());
    EXPECT_EQ(f.last_stats().file_read_bytes, 0);   // no sieving pre-read
    EXPECT_EQ(f.last_stats().file_write_bytes, 64); // only payload written
    // A dense access through the same handle still sieves.
    f.set_view(0, dt::byte(),
               noncontig_filetype(8, 8, 2, 0));  // 50% fill >= 0.2
    f.write_at(0, stream.data(), 64, dt::byte());
    EXPECT_GT(f.last_stats().file_write_bytes, 64);  // whole windows
  });
}

TEST_P(Strategies, SplitCollectiveRoundTrip) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(3, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(), noncontig_filetype(5, 8, 3, comm.rank()));
    const ByteVec stream = payload_stream(comm.rank(), 40);
    f.write_at_all_begin(0, stream.data(), 40, dt::byte());
    EXPECT_EQ(f.write_at_all_end(stream.data()), 40);

    ByteVec back(40, Byte{0});
    f.read_at_all_begin(0, back.data(), 40, dt::byte());
    EXPECT_EQ(f.read_at_all_end(back.data()), 40);
    EXPECT_EQ(back, stream);
  });
}

TEST_P(Strategies, SplitCollectiveMisuseThrows) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    File f = File::open(comm, fs, o);
    ByteVec buf(8, Byte{1});
    // end without begin
    EXPECT_THROW(f.write_at_all_end(buf.data()), Error);
    f.write_at_all_begin(0, buf.data(), 8, dt::byte());
    // nested begin
    EXPECT_THROW(f.write_at_all_begin(0, buf.data(), 8, dt::byte()), Error);
    // mismatched buffer
    ByteVec other(8);
    EXPECT_THROW(f.write_at_all_end(other.data()), Error);
    EXPECT_EQ(f.write_at_all_end(buf.data()), 8);
    // read end after write begin
    f.read_at_all_begin(0, buf.data(), 8, dt::byte());
    EXPECT_THROW(f.write_at_all_end(buf.data()), Error);
    EXPECT_EQ(f.read_at_all_end(buf.data()), 8);
  });
}

TEST_P(Strategies, AtomicModeToggles) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(2, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    File f = File::open(comm, fs, o);
    EXPECT_FALSE(f.atomicity());
    f.set_atomicity(true);
    EXPECT_TRUE(f.atomicity());
    // Accesses still work with whole-range locking (sieving + direct).
    f.set_view(0, dt::byte(), noncontig_filetype(4, 8, 2, comm.rank()));
    const ByteVec stream = payload_stream(comm.rank(), 32);
    EXPECT_EQ(f.write_at(0, stream.data(), 32, dt::byte()), 32);
    comm.barrier();
    ByteVec back(32, Byte{0});
    EXPECT_EQ(f.read_at(0, back.data(), 32, dt::byte()), 32);
    EXPECT_EQ(back, stream);
    f.set_atomicity(false);
    EXPECT_FALSE(f.atomicity());
  });
}

TEST_P(Strategies, AtomicOverlappingWritersAreNotTorn) {
  // Two ranks repeatedly write the SAME region with different uniform
  // values through a view with gaps; in atomic mode every read of the
  // region must observe exactly one writer's value.
  auto fs = pfs::MemFile::create();
  const Off nblock = 8, sblock = 8;
  const Off nbytes = nblock * sblock;
  std::atomic<bool> torn{false};
  sim::Runtime::run(3, [&](sim::Comm& comm) {
    Options o;
    o.method = GetParam();
    o.file_buffer_size = 16;  // many windows -> torn without atomicity
    File f = File::open(comm, fs, o);
    f.set_atomicity(true);
    // All ranks share the SAME fileview (rank 0's pattern).
    f.set_view(0, dt::byte(), noncontig_filetype(nblock, sblock, 2, 0));
    if (comm.rank() < 2) {
      ByteVec mine(to_size(nbytes),
                   Byte{static_cast<unsigned char>(0xA0 + comm.rank())});
      for (int i = 0; i < 25; ++i)
        f.write_at(0, mine.data(), nbytes, dt::byte());
    } else {
      ByteVec seen(to_size(nbytes));
      for (int i = 0; i < 50; ++i) {
        f.read_at(0, seen.data(), nbytes, dt::byte());
        const Byte first = seen[0];
        if (first != Byte{0})  // skip until someone wrote
          for (Byte b : seen)
            if (b != first) torn = true;
      }
    }
  });
  EXPECT_FALSE(torn.load());
}

INSTANTIATE_TEST_SUITE_P(BothMethods, Strategies,
                         ::testing::Values(Method::ListBased,
                                           Method::Listless),
                         [](const ::testing::TestParamInfo<Method>& pinfo) {
                           return pinfo.param == Method::ListBased
                                      ? "list_based"
                                      : "listless";
                         });

}  // namespace
}  // namespace llio::mpiio
