// Unit tests for the two-phase helpers (file domains, access-range
// exchange), the View machinery, and the OlWalker baseline primitive.
#include <gtest/gtest.h>

#include <limits>

#include "io_test_util.hpp"
#include "listio/ol_walker.hpp"
#include "mpiio/twophase.hpp"
#include "mpiio/view.hpp"

namespace llio::mpiio {
namespace {

TEST(PartitionDomains, SplitsEvenlyWithAlignment) {
  GlobalRange g{0, 1000, true};
  const auto doms = partition_domains(g, 4, 64);
  ASSERT_EQ(doms.size(), 4u);
  // ceil(1000/4)=250 rounded up to 64 -> 256-byte chunks.
  EXPECT_EQ(doms[0].lo, 0);
  EXPECT_EQ(doms[0].hi, 256);
  EXPECT_EQ(doms[1].lo, 256);
  EXPECT_EQ(doms[2].hi, 768);
  EXPECT_EQ(doms[3].hi, 1000);  // clamped to the global end
  // Domains tile [lo, hi) exactly.
  Off at = g.lo;
  for (const Domain& d : doms) {
    EXPECT_EQ(d.lo, at);
    EXPECT_GE(d.hi, d.lo);
    at = d.hi;
  }
  EXPECT_EQ(at, g.hi);
}

TEST(PartitionDomains, TrailingDomainsMayBeEmpty) {
  GlobalRange g{100, 164, true};  // 64 bytes
  const auto doms = partition_domains(g, 4, 64);
  EXPECT_EQ(doms[0].lo, 100);
  EXPECT_EQ(doms[0].hi, 164);
  for (std::size_t i = 1; i < 4; ++i) EXPECT_TRUE(doms[i].empty());
}

TEST(PartitionDomains, EmptyGlobalRange) {
  const auto doms = partition_domains(GlobalRange{}, 3, 64);
  for (const Domain& d : doms) EXPECT_TRUE(d.empty());
}

TEST(PartitionDomains, SingleIop) {
  GlobalRange g{7, 7777, true};
  const auto doms = partition_domains(g, 1, 4096);
  ASSERT_EQ(doms.size(), 1u);
  EXPECT_EQ(doms[0].lo, 7);
  EXPECT_EQ(doms[0].hi, 7777);
}

TEST(PartitionDomains, RejectsBadArguments) {
  EXPECT_THROW(partition_domains(GlobalRange{}, 0, 64), Error);
  EXPECT_THROW(partition_domains(GlobalRange{}, 2, 0), Error);
}

// Regression: the chunk computation used to overflow Off for ranges near
// the type maximum (round_up(ceil_div(total, niops), align) wrapped
// negative), which produced empty *leading* domains and dropped coverage
// of the tail of the range.
TEST(PartitionDomains, HugeRangeNearOffMaxDoesNotOverflow) {
  const Off max = std::numeric_limits<Off>::max();
  GlobalRange g{0, max - 1, true};
  const auto doms = partition_domains(g, 3, 1 << 20);
  ASSERT_EQ(doms.size(), 3u);
  Off at = g.lo;
  for (const Domain& d : doms) {
    if (d.empty()) continue;
    EXPECT_EQ(d.lo, at);
    at = d.hi;
  }
  EXPECT_EQ(at, g.hi);  // full coverage, nothing dropped
}

// Invariant the IOP loops rely on: every empty domain trails every
// non-empty one, across alignments larger and smaller than the range.
TEST(PartitionDomains, EmptyDomainsOnlyTrail) {
  const Off aligns[] = {1, 64, 1000, 4096, Off{1} << 40};
  const Off totals[] = {1, 63, 64, 65, 1000, (Off{1} << 41) + 17};
  for (const Off align : aligns) {
    for (const Off total : totals) {
      for (const int niops : {1, 2, 3, 7}) {
        GlobalRange g{100, 100 + total, true};
        const auto doms = partition_domains(g, niops, align);
        bool seen_empty = false;
        Off at = g.lo;
        for (const Domain& d : doms) {
          if (d.empty()) {
            seen_empty = true;
            continue;
          }
          EXPECT_FALSE(seen_empty)
              << "empty domain precedes a non-empty one: total=" << total
              << " align=" << align << " niops=" << niops;
          EXPECT_EQ(d.lo, at);
          at = d.hi;
        }
        EXPECT_EQ(at, g.hi);
      }
    }
  }
}

TEST(GlobalRangeOf, SkipsEmptyParticipants) {
  std::vector<AccessRange> rs = {
      {0, 0, 0, 0},          // empty
      {0, 10, 100, 200},     //
      {0, 5, 50, 120},       //
      {0, 0, 999, 99999},    // empty: ignored despite wild values
  };
  const GlobalRange g = global_range(rs);
  EXPECT_TRUE(g.any);
  EXPECT_EQ(g.lo, 50);
  EXPECT_EQ(g.hi, 200);
  EXPECT_FALSE(global_range({}).any);
}

TEST(EffectiveIops, ClampsToCommSize) {
  EXPECT_EQ(effective_iops(0, 8), 8);
  EXPECT_EQ(effective_iops(3, 8), 3);
  EXPECT_EQ(effective_iops(12, 8), 8);
  EXPECT_EQ(effective_iops(-1, 8), 8);
}

TEST(ExchangeRanges, AllGatherRoundTrip) {
  sim::Runtime::run(3, [&](sim::Comm& comm) {
    AccessRange mine{comm.rank() * 10, comm.rank() + 1, comm.rank() * 100,
                     comm.rank() * 100 + 50};
    const auto all = exchange_ranges(comm, mine);
    ASSERT_EQ(all.size(), 3u);
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(all[to_size(Off{r})].stream_lo, r * 10);
      EXPECT_EQ(all[to_size(Off{r})].nbytes, r + 1);
      EXPECT_EQ(all[to_size(Off{r})].abs_lo, r * 100);
    }
  });
}

TEST(ViewChecks, DenseDetection) {
  EXPECT_TRUE((View{0, dt::byte(), dt::byte()}.dense()));
  EXPECT_TRUE(
      (View{0, dt::double_(), dt::contiguous(8, dt::double_())}.dense()));
  EXPECT_FALSE(
      (View{0, dt::byte(), iotest::noncontig_filetype(4, 8, 2, 0)}.dense()));
}

TEST(ViewChecks, ValidationRules) {
  // Valid.
  EXPECT_NO_THROW(validate_view(
      View{16, dt::double_(), iotest::noncontig_filetype(4, 8, 2, 1)}));
  // Negative displacement.
  EXPECT_THROW(validate_view(View{-1, dt::byte(), dt::byte()}), Error);
  // Null types.
  EXPECT_THROW(validate_view(View{0, nullptr, dt::byte()}), Error);
  EXPECT_THROW(validate_view(View{0, dt::byte(), nullptr}), Error);
  // Non-contiguous etype.
  EXPECT_THROW(validate_view(View{0, dt::hvector(2, 1, 3, dt::byte()),
                                  dt::contiguous(6, dt::byte())}),
               Error);
  // Zero-size filetype.
  EXPECT_THROW(validate_view(View{0, dt::byte(), dt::contiguous(0, dt::byte())}),
               Error);
  // etype does not divide the filetype.
  EXPECT_THROW(
      validate_view(View{0, dt::double_(), dt::contiguous(10, dt::byte())}),
      Error);
}

TEST(OlWalkerUnit, SequentialConsumptionWrapsInstances) {
  const dt::Type t = iotest::noncontig_filetype(3, 4, 2, 0);  // 3x4B, str 8
  const dt::OlList list = dt::flatten(t);
  listio::OlWalker w(&list, t->extent());
  EXPECT_EQ(w.unit_size(), 12);
  w.position(0);
  // Blocks at 0, 8, 16; instance extent 24.
  EXPECT_EQ(w.run_mem(), 0);
  EXPECT_EQ(w.run_len(), 4);
  w.consume(4);
  EXPECT_EQ(w.run_mem(), 8);
  w.consume(4);
  w.consume(4);  // end of instance 0
  EXPECT_EQ(w.run_mem(), 24);  // instance 1, block 0
  EXPECT_EQ(w.stream(), 12);
}

TEST(OlWalkerUnit, PositionAtBoundaries) {
  const dt::Type t = iotest::noncontig_filetype(3, 4, 2, 1);  // disp 4
  const dt::OlList list = dt::flatten(t);
  listio::OlWalker w(&list, t->extent());
  w.position(4);  // start of the second block
  EXPECT_EQ(w.run_mem(), 12);
  w.position(12);  // start of instance 1
  EXPECT_EQ(w.run_mem(), 24 + 4);
  w.position(11);
  EXPECT_EQ(w.run_mem(), 20 + 3);
}

TEST(OlWalkerUnit, BytesBelowMatchesManualCount) {
  const dt::Type t = iotest::noncontig_filetype(2, 8, 2, 0);  // 8B @ 0,16
  const dt::OlList list = dt::flatten(t);
  listio::OlWalker w(&list, t->extent());
  EXPECT_EQ(w.bytes_below(0), 0);
  EXPECT_EQ(w.bytes_below(8), 8);
  EXPECT_EQ(w.bytes_below(12), 8);   // in the gap
  EXPECT_EQ(w.bytes_below(20), 12);  // inside block 1
  EXPECT_EQ(w.bytes_below(32), 16);  // end of instance 0
  EXPECT_EQ(w.bytes_below(36), 20);  // into instance 1
}

TEST(OlWalkerUnit, RejectsMisuse) {
  const dt::Type t = iotest::noncontig_filetype(2, 8, 2, 0);
  const dt::OlList list = dt::flatten(t);
  listio::OlWalker w(&list, t->extent());
  EXPECT_THROW(w.position(-1), Error);
  w.position(0);
  EXPECT_THROW(w.consume(9), Error);  // beyond the 8-byte block
  const dt::OlList empty;
  EXPECT_THROW(listio::OlWalker(&empty, 8), Error);
}

TEST(CumulativeStats, AccumulatesAcrossOps) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(1, [&](sim::Comm& comm) {
    File f = File::open(comm, fs, Options{});
    ByteVec buf(100, Byte{1});
    f.write_at(0, buf.data(), 100, dt::byte());
    f.write_at(100, buf.data(), 100, dt::byte());
    f.read_at(0, buf.data(), 50, dt::byte());
    EXPECT_EQ(f.last_stats().bytes_moved, 50);
    EXPECT_EQ(f.cumulative_stats().bytes_moved, 250);
    EXPECT_EQ(f.cumulative_stats().file_write_bytes, 200);
    EXPECT_GE(f.cumulative_stats().total_s, f.last_stats().total_s);
  });
}

}  // namespace
}  // namespace llio::mpiio
