// Shared test helpers: deterministic random datatype generators and a
// simple reference packer built on the explicit flatten (used to
// cross-validate the flattening-on-the-fly cursor, which shares no code
// with it beyond the Node tree).
#pragma once

#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "dtype/datatype.hpp"
#include "dtype/flatten.hpp"
#include "fotf/navigate.hpp"

namespace llio::testutil {

using Rng = std::mt19937_64;

inline Off rnd(Rng& rng, Off lo, Off hi) {
  return std::uniform_int_distribution<Off>(lo, hi)(rng);
}

/// Random datatype of bounded depth and size; may be non-monotone, may
/// have negative displacements — everything pack/unpack must handle.
inline dt::Type random_type(Rng& rng, int depth) {
  if (depth <= 0 || rnd(rng, 0, 3) == 0) {
    switch (rnd(rng, 0, 3)) {
      case 0: return dt::byte();
      case 1: return dt::int_();
      case 2: return dt::double_();
      default: return dt::short_();
    }
  }
  const dt::Type child = random_type(rng, depth - 1);
  switch (rnd(rng, 0, 4)) {
    case 0:
      return dt::contiguous(rnd(rng, 1, 4), child);
    case 1: {
      const Off count = rnd(rng, 1, 4);
      const Off blocklen = rnd(rng, 1, 3);
      // Stride may undershoot (overlap) or overshoot (holes).
      const Off stride = rnd(rng, -2, 6);
      return dt::hvector(count, blocklen, stride * child->extent() +
                                              rnd(rng, -3, 5), child);
    }
    case 2: {
      const std::size_t nb = static_cast<std::size_t>(rnd(rng, 1, 4));
      std::vector<Off> bls(nb), ds(nb);
      for (std::size_t i = 0; i < nb; ++i) {
        bls[i] = rnd(rng, 1, 3);
        ds[i] = rnd(rng, -20, 60);
      }
      return dt::hindexed(bls, ds, child);
    }
    case 3: {
      const std::size_t nb = static_cast<std::size_t>(rnd(rng, 1, 3));
      std::vector<Off> bls(nb), ds(nb);
      std::vector<dt::Type> kids(nb);
      for (std::size_t i = 0; i < nb; ++i) {
        bls[i] = rnd(rng, 1, 2);
        ds[i] = rnd(rng, -16, 48);
        kids[i] = random_type(rng, depth - 1);
      }
      return dt::struct_(bls, ds, kids);
    }
    default: {
      const Off lb = rnd(rng, -8, 8);
      const Off ext = rnd(rng, 0, 3) == 0
                          ? child->extent()
                          : child->extent() + rnd(rng, 1, 24);
      return dt::resized(child, lb, ext);
    }
  }
}

/// Random *file-navigable* type: monotone, non-negative offsets, tiling
/// at extent without interleaving (valid MPI-IO filetype).  Every result
/// satisfies fotf::file_navigable.
inline dt::Type random_navigable_type(Rng& rng, int depth) {
  dt::Type t;
  if (depth <= 0 || rnd(rng, 0, 3) == 0) {
    t = rnd(rng, 0, 1) ? dt::byte() : dt::double_();
  } else {
    const dt::Type child = random_navigable_type(rng, depth - 1);
    switch (rnd(rng, 0, 3)) {
      case 0:
        t = dt::contiguous(rnd(rng, 1, 4), child);
        break;
      case 1: {
        const Off count = rnd(rng, 1, 5);
        const Off blocklen = rnd(rng, 1, 3);
        const Off block_span = blocklen * child->extent();
        const Off stride = block_span + rnd(rng, 0, 32);
        t = dt::hvector(count, blocklen, stride, child);
        break;
      }
      case 2: {
        const std::size_t nb = static_cast<std::size_t>(rnd(rng, 1, 4));
        std::vector<Off> bls(nb), ds(nb);
        Off at = rnd(rng, 0, 16);
        for (std::size_t i = 0; i < nb; ++i) {
          bls[i] = rnd(rng, 1, 3);
          ds[i] = at;
          at += bls[i] * child->extent() + rnd(rng, 0, 24);
        }
        t = dt::hindexed(bls, ds, child);
        break;
      }
      default: {
        const std::size_t nb = static_cast<std::size_t>(rnd(rng, 1, 3));
        std::vector<Off> bls(nb), ds(nb);
        std::vector<dt::Type> kids(nb);
        Off at = rnd(rng, 0, 8);
        for (std::size_t i = 0; i < nb; ++i) {
          kids[i] = random_navigable_type(rng, depth - 1);
          bls[i] = rnd(rng, 1, 2);
          ds[i] = at - kids[i]->true_lb();
          // Keep displacements non-negative.
          if (ds[i] < 0) ds[i] = 0;
          at = ds[i] + (bls[i] - 1) * kids[i]->extent() + kids[i]->true_ub() +
               rnd(rng, 0, 16);
        }
        t = dt::struct_(bls, ds, kids);
        break;
      }
    }
  }
  // Pad the extent so repetitions tile without interleaving.
  if (t->true_ub() - t->true_lb() > t->extent() || rnd(rng, 0, 2) == 0)
    t = dt::resized(t, 0, t->true_ub() + rnd(rng, 0, 16));
  return t;
}

/// Reference pack: materialize the segment list with the explicit flatten
/// and copy tuple by tuple.  Slow and simple — ground truth for fotf.
inline ByteVec reference_pack(const Byte* buf, Off count, const dt::Type& t) {
  const dt::OlList list = dt::flatten(t, /*coalesce=*/false);
  ByteVec out;
  out.reserve(to_size(count * t->size()));
  for (Off i = 0; i < count; ++i) {
    const Off base = i * t->extent();
    for (const dt::OlTuple& tp : list.tuples()) {
      const Byte* src = buf + base + tp.off;
      out.insert(out.end(), src, src + tp.len);
    }
  }
  return out;
}

/// Reference unpack: inverse of reference_pack.
inline void reference_unpack(Byte* buf, Off count, const dt::Type& t,
                             ConstByteSpan packed) {
  const dt::OlList list = dt::flatten(t, /*coalesce=*/false);
  std::size_t at = 0;
  for (Off i = 0; i < count; ++i) {
    const Off base = i * t->extent();
    for (const dt::OlTuple& tp : list.tuples()) {
      std::memcpy(buf + base + tp.off, packed.data() + at, to_size(tp.len));
      at += to_size(tp.len);
    }
  }
}

/// A buffer big enough to hold `count` instances of t, with room for
/// negative offsets; returns (storage, base pointer offset).
struct TypedBuffer {
  ByteVec storage;
  Off base_off;  ///< index of the typemap origin within storage

  Byte* base() { return storage.data() + base_off; }
  const Byte* base() const { return storage.data() + base_off; }
};

inline TypedBuffer make_typed_buffer(const dt::Type& t, Off count,
                                     Byte fill = Byte{0xEE}) {
  const Off lo = std::min<Off>(0, t->true_lb());
  const Off hi = t->true_ub() + (count > 0 ? (count - 1) * t->extent() : 0);
  const Off span = std::max<Off>(hi, 0) - lo + 16;
  TypedBuffer b;
  b.storage.assign(to_size(span), fill);
  b.base_off = -lo;
  return b;
}

/// Fill a typed buffer's data bytes with a deterministic sequence (via the
/// reference list) so pack results are predictable.
inline void fill_typed_data(TypedBuffer& b, const dt::Type& t, Off count,
                            unsigned seed = 1) {
  const dt::OlList list = dt::flatten(t, false);
  unsigned x = seed;
  for (Off i = 0; i < count; ++i) {
    const Off base = i * t->extent();
    for (const dt::OlTuple& tp : list.tuples()) {
      for (Off j = 0; j < tp.len; ++j) {
        x = x * 1664525u + 1013904223u;
        b.base()[base + tp.off + j] = Byte{static_cast<unsigned char>(x >> 24)};
      }
    }
  }
}

}  // namespace llio::testutil
