// Zero-copy descriptor path: PackPlan::materialize must describe exactly
// the bytes pack() would move, the engines must produce byte-identical
// files with llio_zerocopy on or off across every backend, and the
// IoOpStats counters must prove that dense windows really skipped the
// staging copy.
#include <gtest/gtest.h>

#include <atomic>

#include "fotf/plan.hpp"
#include "io_test_util.hpp"
#include "mpiio/mergeview.hpp"

namespace llio::mpiio {
namespace {

using testutil::Rng;

/// Gather the bytes named by a materialized run list (the memcpy the
/// kernel-side writev would do) — ground truth against pack().
ByteVec gather_runs(const Byte* typed_base, const fotf::IoVecSpan& span) {
  ByteVec out;
  out.reserve(to_size(span.total));
  for (const fotf::MemRun& r : span.runs)
    out.insert(out.end(), typed_base + r.mem, typed_base + r.mem + r.len);
  return out;
}

TEST(ZerocopyPlan, MaterializeMatchesPackOnRandomTypes) {
  // Fully random types — negative displacements, overlap, LB/UB resizes —
  // at random windows: the gathered run bytes must equal the packed
  // window byte for byte, and runs must be coalesced.
  Rng rng(20260808);
  int exercised = 0;
  for (int iter = 0; iter < 200; ++iter) {
    const dt::Type t = testutil::random_type(rng, 3);
    auto plan = fotf::PackPlan::compile(t);
    if (plan == nullptr) continue;
    ++exercised;
    const Off count = testutil::rnd(rng, 1, 3);
    const Off total = count * t->size();
    const Off skip = testutil::rnd(rng, 0, total);
    const Off n = testutil::rnd(rng, 0, total - skip);

    auto buf = testutil::make_typed_buffer(t, count);
    testutil::fill_typed_data(buf, t, count, 7u + static_cast<unsigned>(iter));

    ByteVec packed(to_size(n), Byte{0});
    const Off got =
        plan->pack(buf.base(), 0, count, skip, packed.data(), n);
    packed.resize(to_size(got));

    fotf::IoVecSpan span;
    ASSERT_TRUE(plan->materialize(0, count, skip, n, 1u << 20, span))
        << dt::to_string(t);
    EXPECT_EQ(span.total, got);
    EXPECT_EQ(gather_runs(buf.base(), span), packed)
        << dt::to_string(t) << " count=" << count << " skip=" << skip
        << " n=" << n;
    for (std::size_t i = 1; i < span.runs.size(); ++i)
      EXPECT_NE(span.runs[i - 1].mem + span.runs[i - 1].len,
                span.runs[i].mem)
          << "adjacent runs not coalesced: " << dt::to_string(t);
  }
  EXPECT_GT(exercised, 100);
}

TEST(ZerocopyPlan, MemBiasShiftsRuns) {
  const dt::Type t = dt::hvector(3, 4, 8, dt::byte());
  auto plan = fotf::PackPlan::compile(t);
  ASSERT_NE(plan, nullptr);
  fotf::IoVecSpan a, b;
  ASSERT_TRUE(plan->materialize(0, 2, 3, 15, 64, a));
  ASSERT_TRUE(plan->materialize(5, 2, 3, 15, 64, b));
  ASSERT_EQ(a.runs.size(), b.runs.size());
  for (std::size_t i = 0; i < a.runs.size(); ++i) {
    EXPECT_EQ(a.runs[i].mem - 5, b.runs[i].mem);
    EXPECT_EQ(a.runs[i].len, b.runs[i].len);
  }
}

TEST(ZerocopyPlan, CoalescesAcrossInstanceWrap) {
  // contiguous(4, byte): each instance is one 4-byte run that abuts the
  // next instance — any window must come back as a single run.
  auto plan = fotf::PackPlan::compile(dt::contiguous(4, dt::byte()));
  ASSERT_NE(plan, nullptr);
  fotf::IoVecSpan span;
  ASSERT_TRUE(plan->materialize(0, 8, 3, 21, 4, span));
  ASSERT_EQ(span.runs.size(), 1u);
  EXPECT_EQ(span.runs[0].mem, 3);
  EXPECT_EQ(span.runs[0].len, 21);
  EXPECT_EQ(span.total, 21);
}

TEST(ZerocopyPlan, ResizedLbUbAddressing) {
  // Negative LB and padded UB: run offsets follow the typemap origin
  // (instance i at i * extent), exactly like pack().
  const dt::Type base = dt::hvector(2, 3, 8, dt::byte());
  const dt::Type t = dt::resized(base, -4, 24);
  auto plan = fotf::PackPlan::compile(t);
  ASSERT_NE(plan, nullptr);
  EXPECT_EQ(plan->instance_extent(), 24);
  auto buf = testutil::make_typed_buffer(t, 2);
  testutil::fill_typed_data(buf, t, 2, 99);
  const Off total = 2 * t->size();
  ByteVec packed(to_size(total), Byte{0});
  ASSERT_EQ(plan->pack(buf.base(), 0, 2, 0, packed.data(), total), total);
  fotf::IoVecSpan span;
  ASSERT_TRUE(plan->materialize(0, 2, 0, total, 16, span));
  EXPECT_EQ(gather_runs(buf.base(), span), packed);
}

TEST(ZerocopyPlan, DeclinesOverBudgetAndClearsOutput) {
  // 4 separated runs per instance; a 2-run budget must refuse and leave
  // `out` empty so a stale descriptor can never reach the backend.
  auto plan = fotf::PackPlan::compile(dt::hvector(4, 2, 8, dt::byte()));
  ASSERT_NE(plan, nullptr);
  fotf::IoVecSpan span;
  span.runs.push_back({123, 456});  // stale content to be cleared
  EXPECT_FALSE(plan->materialize(0, 1, 0, 8, 2, span));
  EXPECT_TRUE(span.runs.empty());
  EXPECT_EQ(span.total, 0);
  // The same range fits a 4-run budget.
  ASSERT_TRUE(plan->materialize(0, 1, 0, 8, 4, span));
  EXPECT_EQ(span.runs.size(), 4u);
}

TEST(ZerocopyPlan, EmptyAndPastEndWindows) {
  auto plan = fotf::PackPlan::compile(dt::hvector(2, 4, 16, dt::byte()));
  ASSERT_NE(plan, nullptr);
  fotf::IoVecSpan span;
  ASSERT_TRUE(plan->materialize(0, 2, 0, 0, 8, span));  // n == 0
  EXPECT_TRUE(span.runs.empty());
  ASSERT_TRUE(plan->materialize(0, 2, 16, 99, 8, span));  // skip == total
  EXPECT_TRUE(span.runs.empty());
  ASSERT_TRUE(plan->materialize(0, 0, 0, 8, 8, span));  // count == 0
  EXPECT_TRUE(span.runs.empty());
}

TEST(ZerocopyRanges, DenseAcceptsOverlapRejectsHoles) {
  using R = AccessRange;
  // Overlapping but individually contiguous restrictions: dense (reads
  // may overlap).
  EXPECT_TRUE(ranges_dense({R{0, 10, 0, 10}, R{0, 10, 5, 15}}));
  // A participant with holes (file span wider than its bytes): not dense.
  EXPECT_FALSE(ranges_dense({R{0, 10, 0, 10}, R{0, 10, 10, 30}}));
  // Non-participants are ignored; all-idle is not dense.
  EXPECT_TRUE(ranges_dense({R{0, 0, 0, 0}, R{0, 8, 32, 40}}));
  EXPECT_FALSE(ranges_dense({R{0, 0, 0, 0}}));
  EXPECT_FALSE(ranges_dense({}));
}

// ---- engine-level: counters prove staging was skipped --------------------

struct ZcStats {
  std::atomic<std::uint64_t> windows{0};
  std::atomic<std::uint64_t> fallback{0};
  std::atomic<std::uint64_t> runs{0};
  std::atomic<long long> saved{0};

  void add(const IoOpStats& s) {
    windows += s.zerocopy_windows;
    fallback += s.staged_fallback_windows;
    runs += s.iov_runs;
    saved += s.staging_bytes_saved;
  }
};

/// Dense-disjoint collective workload through a noncontig memtype: rank r
/// owns file extent [r*nbytes, (r+1)*nbytes).  Returns the image; fills
/// per-op counter sums.
ByteVec run_dense_nc(Method method, Zerocopy zc, bool plan_on, int nprocs,
                     Off nbytes, ZcStats& wr, ZcStats& rd) {
  auto fs = pfs::MemFile::create();
  sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
    Options o;
    o.method = method;
    o.zerocopy = zc;
    o.pack_plan = plan_on;
    o.file_buffer_size = 256;
    File f = File::open(comm, fs, o);
    f.set_view(0, dt::byte(), dt::byte());
    const ByteVec stream = iotest::payload_stream(comm.rank(), nbytes);
    auto buf = iotest::make_nc_buffer(stream);
    f.write_at_all(comm.rank() * nbytes, buf.storage.data(), buf.count,
                   buf.memtype);
    wr.add(f.last_stats());
    auto back = iotest::make_nc_buffer(ByteVec(to_size(nbytes), Byte{0}));
    f.read_at_all(comm.rank() * nbytes, back.storage.data(), back.count,
                  back.memtype);
    rd.add(f.last_stats());
    EXPECT_EQ(iotest::nc_buffer_stream(back), stream);
  });
  return fs->contents();
}

class ZerocopyEngine : public ::testing::TestWithParam<Method> {};

TEST_P(ZerocopyEngine, DenseCollectiveSkipsStagingOnMemFile) {
  const int nprocs = 3;
  const Off nbytes = 384;  // 48 noncontig 8-byte runs per rank
  ZcStats wr, rd;
  const ByteVec img = run_dense_nc(GetParam(), Zerocopy::Auto, true, nprocs,
                                   nbytes, wr, rd);
  // Every rank's window went through the descriptor path: one zero-copy
  // window per op per rank, the full payload never staged, one iovec run
  // per 8-byte memory block.
  EXPECT_EQ(wr.windows, static_cast<std::uint64_t>(nprocs));
  EXPECT_EQ(rd.windows, static_cast<std::uint64_t>(nprocs));
  EXPECT_EQ(wr.fallback, 0u);
  EXPECT_EQ(rd.fallback, 0u);
  EXPECT_EQ(wr.saved, nprocs * nbytes);
  EXPECT_EQ(rd.saved, nprocs * nbytes);
  EXPECT_EQ(wr.runs, static_cast<std::uint64_t>(nprocs * nbytes / 8));

  // Expected image: rank r's payload dense at r*nbytes.
  ByteVec want(to_size(Off{nprocs} * nbytes), Byte{0});
  for (int r = 0; r < nprocs; ++r)
    for (Off i = 0; i < nbytes; ++i)
      want[to_size(Off{r} * nbytes + i)] = iotest::payload_byte(r, i);
  EXPECT_EQ(img, want);
}

TEST_P(ZerocopyEngine, OffIsByteIdenticalAndCountsNothing) {
  const int nprocs = 3;
  const Off nbytes = 384;
  ZcStats wr_on, rd_on, wr_off, rd_off;
  const ByteVec on = run_dense_nc(GetParam(), Zerocopy::Auto, true, nprocs,
                                  nbytes, wr_on, rd_on);
  const ByteVec off = run_dense_nc(GetParam(), Zerocopy::Off, true, nprocs,
                                   nbytes, wr_off, rd_off);
  EXPECT_EQ(on, off);
  EXPECT_EQ(wr_off.windows, 0u);
  EXPECT_EQ(rd_off.windows, 0u);
  EXPECT_EQ(wr_off.saved, 0);
  EXPECT_EQ(rd_off.saved, 0);
  // Off means the staged path is not a "fallback" — nothing is counted.
  EXPECT_EQ(wr_off.fallback, 0u);
}

TEST(ZerocopyPlanDecline, FallsBackStagedIdentically) {
  // pack_plan=off kills the listless engine's run-table source, so
  // mem_runs declines and every window must take the counted staged
  // fallback — same bytes.  (The list engine's ol-list descriptors do not
  // depend on the plan, so this is listless-specific.)
  const int nprocs = 2;
  const Off nbytes = 192;
  ZcStats wr_a, rd_a, wr_b, rd_b;
  const ByteVec a = run_dense_nc(Method::Listless, Zerocopy::Auto, true,
                                 nprocs, nbytes, wr_a, rd_a);
  const ByteVec b = run_dense_nc(Method::Listless, Zerocopy::Auto, false,
                                 nprocs, nbytes, wr_b, rd_b);
  EXPECT_EQ(a, b);
  EXPECT_EQ(wr_b.windows, 0u);
  EXPECT_EQ(wr_b.saved, 0);
  EXPECT_GE(wr_b.fallback, static_cast<std::uint64_t>(nprocs));
}

INSTANTIATE_TEST_SUITE_P(Methods, ZerocopyEngine,
                         ::testing::Values(Method::ListBased,
                                           Method::Listless),
                         [](const auto& info) {
                           return info.param == Method::ListBased
                                      ? "ListBased"
                                      : "Listless";
                         });

// ---- equivalence fuzz: every backend, both engines, zc on/off ------------

/// One collective write + read-back; returns the final backend image.
ByteVec run_fuzz(Method method, Zerocopy zc, iotest::Backend backend,
                 int nprocs, const std::function<dt::Type(int)>& ft_of,
                 Off disp, Off nbytes, Off offset, Off fbs, unsigned seed,
                 bool nc_mem, bool per_rank_offset = false) {
  auto fs = iotest::make_backend(backend);
  sim::Runtime::run(nprocs, [&](sim::Comm& comm) {
    Options o;
    o.method = method;
    o.zerocopy = zc;
    o.file_buffer_size = fbs;
    o.pack_buffer_size = 64;
    o.zerocopy_min_run = 1;  // engage even for tiny fuzz-sized runs
    File f = File::open(comm, fs, o);
    f.set_view(disp, dt::byte(), ft_of(comm.rank()));
    const Off off = offset + (per_rank_offset ? comm.rank() * nbytes : 0);
    ByteVec stream(to_size(nbytes));
    for (Off i = 0; i < nbytes; ++i)
      stream[to_size(i)] =
          iotest::payload_byte(comm.rank() + static_cast<int>(seed), i);
    if (nc_mem) {
      auto buf = iotest::make_nc_buffer(stream);
      f.write_at_all(off, buf.storage.data(), buf.count, buf.memtype);
      auto back = iotest::make_nc_buffer(ByteVec(to_size(nbytes), Byte{0}));
      f.read_at_all(off, back.storage.data(), back.count, back.memtype);
      EXPECT_EQ(iotest::nc_buffer_stream(back), stream);
    } else {
      f.write_at_all(off, stream.data(), nbytes, dt::byte());
      ByteVec back(to_size(nbytes), Byte{0});
      f.read_at_all(off, back.data(), nbytes, dt::byte());
      EXPECT_EQ(back, stream);
    }
  });
  return iotest::backend_image(fs);
}

class ZerocopyFuzz : public ::testing::TestWithParam<unsigned> {};

TEST_P(ZerocopyFuzz, OnOffByteIdenticalEverywhere) {
  Rng rng(GetParam() * 7919u);
  for (int iter = 0; iter < 2; ++iter) {
    const int nprocs = static_cast<int>(testutil::rnd(rng, 2, 3));
    const Off nblock = testutil::rnd(rng, 2, 5);
    const Off sblock = testutil::rnd(rng, 1, 3) * 8;  // nc memtype needs %8
    const auto ft_of = [&, nblock, sblock, nprocs](int r) {
      return iotest::noncontig_filetype(nblock, sblock, nprocs, r);
    };
    const Off unit = nblock * sblock;
    const Off nbytes = testutil::rnd(rng, 1, 2) * unit;
    const Off offset = testutil::rnd(rng, 0, 2) * unit;
    const Off disp = testutil::rnd(rng, 0, 4) * 8;
    const Off fbs = testutil::rnd(rng, 1, 4) * 64;
    const bool nc_mem = testutil::rnd(rng, 0, 1) == 1;
    const unsigned seed = GetParam() * 100 + static_cast<unsigned>(iter);
    for (Method m : {Method::ListBased, Method::Listless}) {
      for (iotest::Backend b : iotest::kAllBackends) {
        ByteVec on = run_fuzz(m, Zerocopy::Auto, b, nprocs, ft_of, disp,
                              nbytes, offset, fbs, seed, nc_mem);
        ByteVec off = run_fuzz(m, Zerocopy::Off, b, nprocs, ft_of, disp,
                               nbytes, offset, fbs, seed, nc_mem);
        iotest::pad_to_common(on, off);
        EXPECT_EQ(on, off)
            << method_name(m) << " over " << iotest::backend_name(b)
            << " nblock=" << nblock << " sblock=" << sblock
            << " nbytes=" << nbytes << " offset=" << offset
            << " disp=" << disp << " nc_mem=" << nc_mem;
      }
    }
  }
}

TEST_P(ZerocopyFuzz, RandomNavigableViewsOnOffIdentical) {
  // Arbitrary navigable filetype shared by all ranks, disjoint instance
  // ranges; dense memtype.  Exercises the plan-decline and over-budget
  // fallbacks organically (random trees vary run counts wildly).
  Rng rng(GetParam() + 31337u);
  for (int iter = 0; iter < 3; ++iter) {
    const dt::Type ft = testutil::random_navigable_type(rng, 3);
    const Off unit = ft->size();
    if (unit == 0) continue;
    const int nprocs = static_cast<int>(testutil::rnd(rng, 2, 3));
    const Off nbytes = testutil::rnd(rng, 1, 2) * unit;
    const Off fbs = testutil::rnd(rng, 1, 4) * 64;
    const unsigned seed = GetParam() * 311 + static_cast<unsigned>(iter);
    const auto ft_of = [&](int) { return ft; };
    for (Method m : {Method::ListBased, Method::Listless}) {
      auto run = [&](Zerocopy zc) {
        return run_fuzz(m, zc, iotest::Backend::Mem, nprocs, ft_of, 0,
                        nbytes, /*offset=*/0, fbs, seed, false,
                        /*per_rank_offset=*/true);
      };
      EXPECT_EQ(run(Zerocopy::Auto), run(Zerocopy::Off))
          << method_name(m) << " " << dt::to_string(ft)
          << " nbytes=" << nbytes << " fbs=" << fbs;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ZerocopyFuzz, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace llio::mpiio
