#!/usr/bin/env python3
"""Gate a bench_ablation_adaptive run: adaptive must survive the flip.

Usage:
    check_adaptive.py CURRENT [--best-floor 0.9] [--worst-floor 1.15]

CURRENT holds one JSON object per line (the `sed -n 's/^json://p'`
extraction of the bench output; a leading schema line is tolerated).
All gates compare rows within the same run, so machine speed cancels
out:

  * the scenario premise must hold — in the pure "slow" regime the
    independent route (ll:ix) beats two-phase (ll:tp), and in the pure
    "shared-mem" regime two-phase beats independent.  If the crossing
    ever drifts away, the flip scenario stops testing adaptation and
    the gate must say so rather than pass vacuously;
  * every adaptive net-recovery row must reach at least --best-floor x
    the best static row and --worst-floor x the worst static row, and
    must have actually explored (probes > 0) and reacted to the flip
    (switches >= 1) — a policy that silently never probes would
    otherwise coast through on its base arm;
  * the hysteresis (llio_adaptive=auto) row must strictly beat every
    static configuration: riding ix through the congestion and
    switching to tp after the recovery beats any fixed choice
    end-to-end, which is the point of the layer.

Exit status: 0 when the gate holds, 1 otherwise.
"""

import argparse
import json
import sys


def load_rows(path):
    rows = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"error: {path}:{lineno}: invalid JSON record: {e.msg}",
                      file=sys.stderr)
                raise SystemExit(1)
            if not isinstance(row, dict) or row.get("bench") != "ablation_adaptive":
                continue
            for field in ("scenario", "config", "adaptive", "policy",
                          "mbps_pp", "probes", "switches"):
                if field not in row:
                    print(f"error: {path}:{lineno}: row missing required "
                          f"field {field!r}", file=sys.stderr)
                    raise SystemExit(1)
            rows.append(row)
    return rows


def pure_row(rows, scenario, config):
    for r in rows:
        if r["scenario"] == scenario and r["config"] == config:
            return r
    print(f"error: missing pure-regime row {scenario}/{config}",
          file=sys.stderr)
    raise SystemExit(1)


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--best-floor", type=float, default=0.9,
                    help="adaptive floor vs the best static (default 0.9)")
    ap.add_argument("--worst-floor", type=float, default=1.15,
                    help="adaptive floor vs the worst static (default 1.15)")
    args = ap.parse_args()

    rows = load_rows(args.current)
    failures = []

    # 1. The crossing premise: no single route wins both pure regimes.
    slow_tp = pure_row(rows, "slow", "ll:tp")["mbps_pp"]
    slow_ix = pure_row(rows, "slow", "ll:ix")["mbps_pp"]
    fast_tp = pure_row(rows, "shared-mem", "ll:tp")["mbps_pp"]
    fast_ix = pure_row(rows, "shared-mem", "ll:ix")["mbps_pp"]
    if slow_ix <= slow_tp:
        failures.append(
            f"premise: slow regime ix ({slow_ix:.1f}) must beat tp "
            f"({slow_tp:.1f}) — the congested-fabric half no longer favors "
            f"the exchange-free route")
    if fast_tp <= fast_ix:
        failures.append(
            f"premise: shared-mem regime tp ({fast_tp:.1f}) must beat ix "
            f"({fast_ix:.1f}) — the recovered-fabric half no longer favors "
            f"two-phase")
    print(f"premise: slow ix/tp = {slow_ix:.1f}/{slow_tp:.1f}, "
          f"shared-mem tp/ix = {fast_tp:.1f}/{fast_ix:.1f}")

    # 2. The flip scenario.
    flips = [r for r in rows if r["scenario"] == "net-recovery"]
    statics = [r for r in flips if r["adaptive"] == "off"]
    adaptives = [r for r in flips if r["adaptive"] != "off"]
    if not statics or not adaptives:
        print("error: no net-recovery static/adaptive rows found",
              file=sys.stderr)
        raise SystemExit(1)

    best = max(statics, key=lambda r: r["mbps_pp"])
    worst = min(statics, key=lambda r: r["mbps_pp"])
    print(f"statics: best {best['config']} {best['mbps_pp']:.1f} MB/s/proc, "
          f"worst {worst['config']} {worst['mbps_pp']:.1f}")

    for r in adaptives:
        name = f"{r['config']} ({r['policy']})"
        vs_best = r["mbps_pp"] / best["mbps_pp"]
        vs_worst = r["mbps_pp"] / worst["mbps_pp"]
        verdict = "ok"
        if vs_best < args.best_floor:
            failures.append(
                f"{name}: {r['mbps_pp']:.1f} MB/s/proc is {vs_best:.2f}x the "
                f"best static ({best['config']} {best['mbps_pp']:.1f}), "
                f"floor {args.best_floor}")
            verdict = "FAIL"
        if vs_worst < args.worst_floor:
            failures.append(
                f"{name}: {r['mbps_pp']:.1f} MB/s/proc is {vs_worst:.2f}x the "
                f"worst static ({worst['config']} {worst['mbps_pp']:.1f}), "
                f"floor {args.worst_floor}")
            verdict = "FAIL"
        if r["probes"] < 1:
            failures.append(f"{name}: never probed — exploration is dead")
            verdict = "FAIL"
        if r["switches"] < 1:
            failures.append(f"{name}: never switched — the flip went "
                            f"unnoticed")
            verdict = "FAIL"
        if r["policy"] == "hysteresis" and vs_best <= 1.0:
            failures.append(
                f"{name}: {r['mbps_pp']:.1f} MB/s/proc does not beat the "
                f"best static ({best['config']} {best['mbps_pp']:.1f}) — "
                f"adaptation must win the flip scenario outright")
            verdict = "FAIL"
        print(f"{verdict}: {name} {r['mbps_pp']:.1f} MB/s/proc "
              f"({vs_best:.2f}x best, {vs_worst:.2f}x worst, "
              f"{r['probes']} probes, {r['switches']} switches)")

    if failures:
        print(f"\n{len(failures)} adaptive gate failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  - {f}", file=sys.stderr)
        return 1
    print("adaptive gates hold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
