#!/usr/bin/env python3
"""Gate a bench_ablation_multitenant run: fair-share and cache win.

Usage:
    check_multitenant.py CURRENT [--min-cache-win 1.3]

CURRENT holds one JSON object per line (the `sed -n 's/^json://p'`
extraction of the bench output; a leading schema line is tolerated).

Two within-run rules, so CI runner speed cancels out:

  * fair-share — for every (ntenants, cache) point, the slowest
    tenant's throughput must be at least 1/(2*ntenants) of the
    aggregate (`fair_frac >= 0.5/ntenants`).  A weighted round-robin
    scheduler that starves a lane shows up here directly.
  * cache win — at every tenant count present with both cache states,
    dense re-read bandwidth with the session cache on must be at least
    --min-cache-win x the cache-off row: re-reads served from the
    client block cache instead of the wire.

Both sides of each comparison must exist — a sweep that silently
dropped rows fails loudly, not vacuously.

Exit status: 0 when every gate holds, 1 otherwise.
"""

import argparse
import json
import sys


def load_rows(path):
    rows = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"error: {path}:{lineno}: invalid JSON record: "
                      f"{e.msg}", file=sys.stderr)
                raise SystemExit(1)
            if (not isinstance(row, dict)
                    or row.get("bench") != "ablation_multitenant"):
                continue
            for field in ("ntenants", "cache", "fair_frac", "reread_mbps",
                          "agg_mbps"):
                if field not in row:
                    print(f"error: {path}:{lineno}: row missing required "
                          f"field {field!r}", file=sys.stderr)
                    raise SystemExit(1)
            rows.append(row)
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--min-cache-win", type=float, default=1.3,
                    help="floor for cache-on / cache-off dense re-read "
                         "bandwidth at each tenant count (default 1.3)")
    args = ap.parse_args()

    rows = load_rows(args.current)
    if not rows:
        print(f"error: no bench=ablation_multitenant rows in "
              f"{args.current}", file=sys.stderr)
        return 1

    ok = True

    for r in rows:
        n = r["ntenants"]
        floor = 0.5 / n
        verdict = "ok" if r["fair_frac"] >= floor else "FAIL"
        print(f"{verdict}: fair-share ntenants={n} cache="
              f"{'on' if r['cache'] else 'off'}: slowest tenant = "
              f"{r['fair_frac']:.3f} of aggregate {r['agg_mbps']:.1f} "
              f"MB/s (floor {floor:.3f})")
        ok = ok and r["fair_frac"] >= floor

    by_n = {}
    for r in rows:
        by_n.setdefault(r["ntenants"], {})[bool(r["cache"])] = r
    paired = False
    for n in sorted(by_n):
        pair = by_n[n]
        if True not in pair or False not in pair:
            continue
        paired = True
        off = pair[False]["reread_mbps"]
        on = pair[True]["reread_mbps"]
        win = on / off if off > 0 else 0.0
        verdict = "ok" if win >= args.min_cache_win else "FAIL"
        print(f"{verdict}: cache win ntenants={n}: re-read {on:.1f} vs "
              f"{off:.1f} MB/s -> {win:.2f}x (floor "
              f"{args.min_cache_win:.2f}x)")
        ok = ok and win >= args.min_cache_win
    if not paired:
        print("FAIL: no tenant count has both cache-on and cache-off "
              "rows — cache gate is vacuous")
        ok = False

    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
