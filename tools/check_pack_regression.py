#!/usr/bin/env python3
"""Compare a fresh bench_ablation_pack run against the committed baseline.

Usage:
    check_pack_regression.py BASELINE CURRENT [--max-regress 0.25]

Both files hold one JSON object per line (the `sed -n 's/^json://p'`
extraction of the bench output; a leading schema line is tolerated).
Only serial plan-on rows (threads == 1, plan == "on") are compared — the
steady-state single-thread path whose throughput must not regress across
machines — matched up by sblock.  Rows present on only one side are
reported but do not fail the check (the sweep may grow).

Exit status: 0 when every matched row's pack_mbps is within
(1 - max_regress) of the baseline, 1 otherwise.
"""

import argparse
import json
import sys


def load_rows(path):
    """Parse one JSON object per line, keyed by sblock.

    Lines that do not start with '{' (schema lines, prose) are skipped;
    a line that *looks* like a record but fails to parse, or a matching
    row missing a required field, is a hard error with the file:line —
    silently dropping those is how a truncated bench file passes a
    regression gate.
    """
    rows = {}
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"error: {path}:{lineno}: invalid JSON record: {e.msg}",
                      file=sys.stderr)
                raise SystemExit(1)
            if not isinstance(row, dict) or row.get("bench") != "ablation_pack":
                continue
            if row.get("threads") == 1 and row.get("plan") == "on":
                for field in ("sblock", "pack_mbps"):
                    if field not in row:
                        print(f"error: {path}:{lineno}: row missing "
                              f"required field {field!r}", file=sys.stderr)
                        raise SystemExit(1)
                if not isinstance(row["pack_mbps"], (int, float)):
                    print(f"error: {path}:{lineno}: pack_mbps is not a "
                          f"number: {row['pack_mbps']!r}", file=sys.stderr)
                    raise SystemExit(1)
                rows[row["sblock"]] = row
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument("--max-regress", type=float, default=0.25,
                    help="allowed fractional drop in pack_mbps (default 0.25)")
    args = ap.parse_args()

    base = load_rows(args.baseline)
    cur = load_rows(args.current)
    if not base:
        print(f"error: no serial plan-on rows in {args.baseline}")
        return 1
    if not cur:
        print(f"error: no serial plan-on rows in {args.current}")
        return 1

    failed = False
    for sblock in sorted(base):
        if sblock not in cur:
            print(f"sblock {sblock:>6}: baseline only (skipped)")
            continue
        b = base[sblock]["pack_mbps"]
        c = cur[sblock]["pack_mbps"]
        ratio = c / b if b > 0 else float("inf")
        floor = 1.0 - args.max_regress
        ok = ratio >= floor
        print(f"sblock {sblock:>6}: baseline {b:10.1f} MB/s  "
              f"current {c:10.1f} MB/s  ratio {ratio:5.2f}  "
              f"{'ok' if ok else f'REGRESSED (floor {floor:.2f})'}")
        failed |= not ok
    for sblock in sorted(set(cur) - set(base)):
        print(f"sblock {sblock:>6}: new in current (not compared)")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
