#!/usr/bin/env python3
"""Gate a bench_posix run: queue depth must overlap per-op latency.

Usage:
    check_posix.py CURRENT [--min-speedup 1.2] [--target throttled]

CURRENT holds one JSON object per line (the `sed -n 's/^json://p'`
extraction of the bench output; a leading schema line is tolerated).

The gate reads only the deterministic fallback target (`throttled` by
default): its 150us fixed per-op latency makes the qd speedup a property
of the submission engine, not of the CI runner's storage.  The rule is
within-run, so machine speed cancels out:

  * the best qd >= 4 row must reach at least --min-speedup x the qd=1
    row of the same target, and
  * both rows must exist — a sweep that silently dropped its baseline
    or its deep points must fail loudly, not pass vacuously.

Real-file targets (tmpfs/dir) are reported but not gated: on small CI
runners page-cache writes complete faster than worker handoff, so queue
depth legitimately may not help there.  Rotation rows are also checked
when present: rotate=on must not lose to rotate=off on the striped
target (the exclusive-device layout makes that deterministic too).

Exit status: 0 when the gate holds, 1 otherwise.
"""

import argparse
import json
import sys


def load_rows(path):
    rows = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"error: {path}:{lineno}: invalid JSON record: {e.msg}",
                      file=sys.stderr)
                raise SystemExit(1)
            if not isinstance(row, dict) or row.get("bench") != "posix":
                continue
            for field in ("section", "target", "qd", "mbps_pp"):
                if field not in row:
                    print(f"error: {path}:{lineno}: row missing required "
                          f"field {field!r}", file=sys.stderr)
                    raise SystemExit(1)
            rows.append(row)
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--min-speedup", type=float, default=1.2,
                    help="floor for best qd>=4 vs qd=1 on the gated "
                         "target (default 1.2)")
    ap.add_argument("--target", default="throttled",
                    help="qd-sweep target to gate (default throttled)")
    args = ap.parse_args()

    rows = load_rows(args.current)
    if not rows:
        print(f"error: no bench=posix rows in {args.current}",
              file=sys.stderr)
        return 1

    ok = True

    sweep = {r["qd"]: r["mbps_pp"] for r in rows
             if r["section"] == "qd" and r["target"] == args.target}
    base = sweep.get(1)
    deep = {qd: m for qd, m in sweep.items() if qd >= 4}
    if base is None or not deep:
        print(f"FAIL: qd sweep on target {args.target!r} is missing its "
              f"qd=1 baseline or its qd>=4 points (got qds "
              f"{sorted(sweep)})")
        ok = False
    else:
        best_qd, best = max(deep.items(), key=lambda kv: kv[1])
        speedup = best / base if base > 0 else 0.0
        verdict = "ok" if speedup >= args.min_speedup else "FAIL"
        print(f"{verdict}: {args.target} qd={best_qd} {best:.1f} MB/s vs "
              f"qd=1 {base:.1f} MB/s -> {speedup:.2f}x "
              f"(floor {args.min_speedup:.2f}x)")
        ok = ok and speedup >= args.min_speedup

    for r in rows:
        if r["section"] == "qd" and r["target"] != args.target:
            print(f"info: {r['target']} qd={r['qd']} "
                  f"{r['mbps_pp']:.1f} MB/s (not gated)")

    rot = {bool(r.get("rotate")): r["mbps_pp"] for r in rows
           if r["section"] == "rotate"}
    if True in rot and False in rot:
        speedup = rot[True] / rot[False] if rot[False] > 0 else 0.0
        verdict = "ok" if speedup >= 1.0 else "FAIL"
        print(f"{verdict}: stripe rotation {rot[True]:.1f} MB/s vs "
              f"off {rot[False]:.1f} MB/s -> {speedup:.2f}x (floor 1.00x)")
        ok = ok and speedup >= 1.0

    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
