#!/usr/bin/env python3
"""Validate an llio_report/v1 JSON file (File::close job-level report).

Usage:
    check_report.py REPORT [--min-attributed 0.9] [--expect-straggler R]

Checks, in order:

  * schema: the document is one JSON object tagged "llio_report/v1" with
    the required sections (ranks, phases, counters, histograms,
    straggler, sampling; critical_path when the run was traced).
  * internal consistency: every phase's per_rank_s has nranks entries
    and its min/max/sum agree with them; counters are non-negative.
  * histogram reconciliation: for every merged histogram, the merged
    count equals the sum of the per-rank counts, and each merged
    quantile (p50/p95/p99) lands within one log-linear bucket of the
    per-rank envelope for that quantile.  The bucket formula below is a
    reimplementation of obs::histogram_bucket_index (values < 16 exact,
    then 4 sub-buckets per power-of-two octave) — the two must agree
    bucket for bucket, which tests/test_obs_agg.cpp pins on the C++
    side.
  * critical path (only when --min-attributed is given and the report
    has a critical_path section): attributed_frac must reach the floor.
    Use this gate only on serial (pipeline_depth=0) runs — pipelined
    windows on starved CI runners contain descheduled time that no span
    can attribute, so their fraction is scheduling noise, not coverage.
  * adapt decision trail (only when the report has an adapt section,
    i.e. the run used llio_adaptive): the policy name is known, the
    decisions/probes/switches counters are coherent, and every trail
    entry's op/backend/net index resolves to an interned dim in
    adapt.dims.  --expect-adapt additionally requires the section to be
    present (for CI jobs that assert the adaptive path actually ran),
    and --min-switches N requires at least N switches with the trail
    recording a switched entry (flip-scenario jobs).

Exit status: 0 when every check holds, 1 otherwise.
"""

import argparse
import json
import sys


def bucket_index(v):
    """obs::histogram_bucket_index, verbatim."""
    v = int(v)
    if v < 0:
        v = 0
    if v < 16:
        return v
    msb = v.bit_length() - 1
    sub = (v >> (msb - 2)) & 0x3
    return min(16 + (msb - 4) * 4 + sub, 255)


def fail(msg):
    print(f"FAIL: {msg}")
    return False


def check_phases(report):
    ok = True
    nranks = report["nranks"]
    for p in report["phases"]:
        name = p.get("name", "?")
        per_rank = p.get("per_rank_s")
        if not isinstance(per_rank, list) or len(per_rank) != nranks:
            ok = fail(f"phase {name}: per_rank_s has "
                      f"{len(per_rank or [])} entries, want {nranks}")
            continue
        # The scalars are printed with %.6f, so compare at that grain.
        eps = 2e-6
        if abs(min(per_rank) - p["min_s"]) > eps:
            ok = fail(f"phase {name}: min_s {p['min_s']} != "
                      f"min(per_rank_s) {min(per_rank)}")
        if abs(max(per_rank) - p["max_s"]) > eps:
            ok = fail(f"phase {name}: max_s {p['max_s']} != "
                      f"max(per_rank_s) {max(per_rank)}")
        if abs(sum(per_rank) - p["sum_s"]) > eps * nranks:
            ok = fail(f"phase {name}: sum_s {p['sum_s']} != "
                      f"sum(per_rank_s) {sum(per_rank)}")
    return ok


def check_histograms(report):
    ok = True
    for h in report["histograms"]:
        name = h.get("name", "?")
        merged = h["merged"]
        per_rank = h["per_rank"]
        if len(per_rank) != report["nranks"]:
            ok = fail(f"histogram {name}: {len(per_rank)} per-rank "
                      f"summaries, want {report['nranks']}")
            continue
        if merged["count"] != sum(r["count"] for r in per_rank):
            ok = fail(f"histogram {name}: merged count {merged['count']} "
                      f"!= sum of per-rank counts")
        for q in ("p50", "p95", "p99"):
            occupied = [r for r in per_rank if r["count"] > 0]
            if not occupied or merged["count"] == 0:
                continue
            lo = min(bucket_index(r[q]) for r in occupied)
            hi = max(bucket_index(r[q]) for r in occupied)
            mb = bucket_index(merged[q])
            if not (lo - 1 <= mb <= hi + 1):
                ok = fail(f"histogram {name}: merged {q} {merged[q]} "
                          f"(bucket {mb}) outside per-rank envelope "
                          f"buckets [{lo}, {hi}] +/- 1")
    return ok


def check_adapt(report):
    """Validate the optional adapt section (decision trail).

    The trail indices are Sampler dim-table ids re-interned into
    adapt.dims at report time, so every op/backend/net in every entry
    must name an existing dim — a dangling index means the interning in
    obs::aggregate and the advisor's trail ring disagree.
    """
    adapt = report.get("adapt")
    if adapt is None:
        return True
    ok = True
    if adapt.get("policy") not in ("static", "greedy", "hysteresis"):
        ok = fail(f"adapt policy {adapt.get('policy')!r} unknown "
                  f"(want static|greedy|hysteresis)")
    for k in ("decisions", "probes", "switches"):
        v = adapt.get(k)
        if not isinstance(v, int) or v < 0:
            ok = fail(f"adapt.{k} is {v!r}, want a non-negative integer")
    if not ok:
        return ok
    if adapt["probes"] > adapt["decisions"]:
        ok = fail(f"adapt: {adapt['probes']} probes out of only "
                  f"{adapt['decisions']} decisions")
    if adapt["switches"] > adapt["decisions"]:
        ok = fail(f"adapt: {adapt['switches']} switches out of only "
                  f"{adapt['decisions']} decisions")
    dims = adapt.get("dims")
    trail = adapt.get("trail")
    if not isinstance(dims, list) or not all(
            isinstance(d, str) for d in dims):
        return fail("adapt.dims missing or not a list of strings")
    if not isinstance(trail, list):
        return fail("adapt.trail missing or not a list")
    if len(trail) > adapt["decisions"]:
        ok = fail(f"adapt: trail holds {len(trail)} entries but only "
                  f"{adapt['decisions']} decisions were made")
    prev_seq = 0
    for i, d in enumerate(trail):
        where = f"adapt.trail[{i}]"
        for k, typ in (("seq", int), ("op", int), ("backend", int),
                       ("net", int), ("view_sig", int),
                       ("size_class", int), ("arm", str),
                       ("probe", bool), ("switched", bool),
                       ("cost_ns_per_byte", (int, float)),
                       ("incumbent_ns_per_byte", (int, float))):
            if not isinstance(d.get(k), typ):
                ok = fail(f"{where}: field {k} is {d.get(k)!r}")
        if not ok:
            return ok
        if d["seq"] <= prev_seq:
            ok = fail(f"{where}: seq {d['seq']} not increasing "
                      f"(previous {prev_seq})")
        prev_seq = d["seq"]
        # The interned-dim referential check the trail exists to keep.
        for k in ("op", "backend", "net"):
            if not 0 <= d[k] < len(dims):
                ok = fail(f"{where}: {k} index {d[k]} does not resolve "
                          f"in adapt.dims (size {len(dims)})")
        if not d["arm"]:
            ok = fail(f"{where}: empty arm label")
        if d["cost_ns_per_byte"] < 0:
            ok = fail(f"{where}: negative cost_ns_per_byte")
    return ok


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("report")
    ap.add_argument("--min-attributed", type=float, default=None,
                    help="floor for critical_path.attributed_frac "
                         "(serial runs only; see module docstring)")
    ap.add_argument("--expect-straggler", type=int, default=None,
                    help="required straggler rank (for injected-slow-rank "
                         "scenarios)")
    ap.add_argument("--expect-adapt", action="store_true",
                    help="require the adapt decision-trail section "
                         "(llio_adaptive runs)")
    ap.add_argument("--min-switches", type=int, default=None,
                    help="require at least N adapt switches, with the "
                         "trail actually recording a switched entry "
                         "(implies --expect-adapt)")
    args = ap.parse_args()

    with open(args.report) as f:
        try:
            report = json.load(f)
        except json.JSONDecodeError as e:
            print(f"error: {args.report}: invalid JSON: {e.msg}",
                  file=sys.stderr)
            return 1

    ok = True
    if report.get("schema") != "llio_report/v1":
        return int(not fail(f"schema is {report.get('schema')!r}, "
                            f"want 'llio_report/v1'"))
    for section, typ in (("nranks", int), ("ranks", list), ("phases", list),
                         ("counters", dict), ("histograms", list),
                         ("straggler", dict), ("global_histograms", dict),
                         ("sampling", dict)):
        if not isinstance(report.get(section), typ):
            ok = fail(f"missing or mistyped section {section!r}")
    if not ok:
        return 1
    if len(report["ranks"]) != report["nranks"]:
        ok = fail(f"{len(report['ranks'])} ranks listed, "
                  f"nranks={report['nranks']}")

    ok = check_phases(report) and ok
    ok = check_histograms(report) and ok
    ok = check_adapt(report) and ok
    if (args.expect_adapt or args.min_switches is not None) \
            and "adapt" not in report:
        ok = fail("--expect-adapt given but the report has no adapt "
                  "section (was llio_adaptive set?)")
    if args.min_switches is not None and "adapt" in report:
        adapt = report["adapt"]
        if adapt.get("switches", 0) < args.min_switches:
            ok = fail(f"adapt.switches {adapt.get('switches')} < required "
                      f"{args.min_switches}")
        trail_switches = sum(
            1 for d in adapt.get("trail", []) if d.get("switched"))
        if args.min_switches > 0 and trail_switches < 1:
            ok = fail("adapt trail records no switched entry (the switch "
                      "fell outside the trail ring?)")

    for k, v in report["counters"].items():
        if not isinstance(v, int) or v < 0:
            ok = fail(f"counter {k} is {v!r}, want a non-negative integer")

    sampling = report["sampling"]
    if sampling.get("produced", -1) < 0 or sampling.get("dropped", -1) < 0:
        ok = fail(f"sampling section malformed: {sampling}")
    if sampling.get("dropped", 0) > sampling.get("produced", 0):
        ok = fail("sampling dropped more records than it produced")

    straggler = report["straggler"]
    if args.expect_straggler is not None:
        if straggler.get("rank") != args.expect_straggler:
            ok = fail(f"straggler rank {straggler.get('rank')} != "
                      f"expected {args.expect_straggler}")

    cp = report.get("critical_path")
    if args.min_attributed is not None:
        if cp is None:
            ok = fail("--min-attributed given but the report has no "
                      "critical_path section (was the run traced?)")
        elif cp.get("windows", 0) <= 0:
            ok = fail("critical_path has no windows")
        elif cp["attributed_frac"] < args.min_attributed:
            ok = fail(f"attributed_frac {cp['attributed_frac']:.4f} < "
                      f"floor {args.min_attributed}")

    if ok:
        phases = {p["name"] for p in report["phases"]}
        cp_note = (f", critical path {cp['attributed_frac'] * 100:.1f}% "
                   f"attributed over {cp['windows']} windows "
                   f"(limiter {cp['limiter']})" if cp else "")
        adapt = report.get("adapt")
        if adapt:
            cp_note += (f", adapt {adapt['policy']}: "
                        f"{adapt['decisions']} decisions "
                        f"({adapt['probes']} probes, "
                        f"{adapt['switches']} switches)")
        print(f"ok: {report['nranks']} ranks, phases {sorted(phases)}, "
              f"{len(report['histograms'])} merged histograms, straggler "
              f"rank {straggler.get('rank')}"
              f" (imbalance {straggler.get('imbalance')})"
              f"{cp_note}")
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
