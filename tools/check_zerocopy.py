#!/usr/bin/env python3
"""Gate a bench_ablation_zerocopy run: zero-copy must not lose to staging.

Usage:
    check_zerocopy.py CURRENT [--min-speedup 1.0]

CURRENT holds one JSON object per line (the `sed -n 's/^json://p'`
extraction of the bench output; a leading schema line is tolerated).
The gate is within-run, so machine speed cancels out:

  * every dense-workload zerocopy=auto row must reach at least
    --min-speedup x its own staged (zerocopy=off) baseline, and
  * dense auto rows must actually have taken the descriptor path
    (zerocopy_windows > 0, staging_bytes_saved > 0) — a silently
    disengaged fast path would otherwise pass at 1.0x forever.

Holey rows are reported but not gated: staging may legitimately win
there, which is exactly why llio_zerocopy=auto falls back per window.

Exit status: 0 when the gate holds, 1 otherwise.
"""

import argparse
import json
import sys


def load_rows(path):
    rows = []
    with open(path) as f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line or not line.startswith("{"):
                continue
            try:
                row = json.loads(line)
            except json.JSONDecodeError as e:
                print(f"error: {path}:{lineno}: invalid JSON record: {e.msg}",
                      file=sys.stderr)
                raise SystemExit(1)
            if not isinstance(row, dict) or row.get("bench") != "ablation_zerocopy":
                continue
            for field in ("backend", "workload", "zerocopy",
                          "speedup_vs_staged", "zerocopy_windows",
                          "staging_bytes_saved"):
                if field not in row:
                    print(f"error: {path}:{lineno}: row missing required "
                          f"field {field!r}", file=sys.stderr)
                    raise SystemExit(1)
            rows.append(row)
    return rows


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("current")
    ap.add_argument("--min-speedup", type=float, default=1.0,
                    help="floor for dense auto vs staged (default 1.0)")
    args = ap.parse_args()

    rows = load_rows(args.current)
    auto_rows = [r for r in rows if r["zerocopy"] == "auto"]
    if not auto_rows:
        print(f"error: no zerocopy=auto rows in {args.current}")
        return 1

    failed = False
    for r in auto_rows:
        dense = r["workload"] == "dense"
        speedup = r["speedup_vs_staged"]
        problems = []
        if dense and speedup < args.min_speedup:
            problems.append(f"speedup {speedup:.2f} < floor {args.min_speedup:.2f}")
        if dense and r["zerocopy_windows"] <= 0:
            problems.append("descriptor path never engaged")
        if dense and r["staging_bytes_saved"] <= 0:
            problems.append("no staging bytes saved")
        verdict = "FAILED: " + "; ".join(problems) if problems else (
            "ok" if dense else "ok (not gated)")
        print(f"{r['backend']:>10} {r['workload']:<6} "
              f"speedup {speedup:5.2f}x  zc_windows {r['zerocopy_windows']:>4}  "
              f"{verdict}")
        failed |= bool(problems)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
