// llio_trace_check: validate a Chrome trace-event JSON file.
//
//   llio_trace_check <trace.json> [--min-spans N] [--require-name NAME]
//
// Exits 0 when the file parses as a trace-event object, every event has
// the required fields, and any --min-spans / --require-name constraints
// hold; exits 1 otherwise with the reason on stderr.  CI runs this over
// the trace a bench emitted with llio_trace=full before uploading it as
// an artifact.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/trace_check.hpp"

int main(int argc, char** argv) {
  std::string path;
  long min_spans = 0;
  std::vector<std::string> required;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "%s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--min-spans") {
      min_spans = std::atol(next());
    } else if (arg == "--require-name") {
      required.emplace_back(next());
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "usage: llio_trace_check <trace.json> [--min-spans N] "
                   "[--require-name NAME]\n");
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "more than one input file\n");
      return 2;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr,
                 "usage: llio_trace_check <trace.json> [--min-spans N] "
                 "[--require-name NAME]\n");
    return 2;
  }

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open %s\n", path.c_str());
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();

  const llio::obs::TraceCheckResult r =
      llio::obs::check_chrome_trace(buf.str());
  if (!r.ok) {
    std::fprintf(stderr, "invalid trace %s: %s\n", path.c_str(),
                 r.error.c_str());
    return 1;
  }
  if (r.spans < min_spans) {
    std::fprintf(stderr, "trace %s has %ld spans, expected >= %ld\n",
                 path.c_str(), (long)r.spans, min_spans);
    return 1;
  }
  for (const std::string& name : required) {
    bool found = false;
    for (const auto& n : r.names) {
      if (n == name) {
        found = true;
        break;
      }
    }
    if (!found) {
      std::fprintf(stderr, "trace %s has no event named \"%s\"\n",
                   path.c_str(), name.c_str());
      return 1;
    }
  }
  std::printf("%s: ok (%ld events, %ld spans, %ld tracks)\n", path.c_str(),
              (long)r.events, (long)r.spans, (long)r.tracks);
  return 0;
}
